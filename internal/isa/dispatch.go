package isa

import "fmt"

// Dispatch selects how a vCPU executes instructions.
type Dispatch int

const (
	// DispatchBlocks executes through the predecoded basic-block
	// engine (block.go), falling back to Step where predecoding cannot
	// represent an instruction exactly. This is the default.
	DispatchBlocks Dispatch = iota

	// DispatchOracle forces the per-instruction decode-switch
	// interpreter (CPU.Step) — the semantic oracle the block engine is
	// verified against, and the baseline for dispatch benchmarks.
	DispatchOracle

	// DispatchLockstep runs the block engine and the oracle in
	// differential lockstep: every dispatch unit executes under both
	// (via snapshot-rewind-replay on the same memory) and any state,
	// memory, or error divergence fails the unit. Verification only —
	// orders of magnitude slower than either engine alone.
	DispatchLockstep
)

// String returns the flag-friendly name of the dispatch mode.
func (d Dispatch) String() string {
	switch d {
	case DispatchBlocks:
		return "blocks"
	case DispatchOracle:
		return "oracle"
	case DispatchLockstep:
		return "lockstep"
	default:
		return fmt.Sprintf("dispatch(%d)", int(d))
	}
}

// ParseDispatch parses a dispatch-mode name as printed by String.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "blocks":
		return DispatchBlocks, nil
	case "oracle":
		return DispatchOracle, nil
	case "lockstep":
		return DispatchLockstep, nil
	}
	return 0, fmt.Errorf("unknown dispatch mode %q (want blocks, oracle, or lockstep)", s)
}

// Runner executes dispatch units on a CPU: at least one instruction per
// unit (budget permitting), never more than budget. The machine's run
// loop brackets each unit between SMI pause points, so a unit is the
// granularity at which patches land and state saves are taken.
type Runner interface {
	RunUnit(budget int) (retired int, err error)
}

// IntrospectSink receives execution events from the block engine for
// the introspection layer. isa deliberately does not import the
// introspect package (introspect imports mem, which isa sits on top
// of); introspect.Channel satisfies this interface and the machine
// layer forwards it to each vCPU's engine.
type IntrospectSink interface {
	// OnCacheFlush fires when a vCPU's block engine discards its
	// predecoded cache after observing a code-epoch move.
	OnCacheFlush(cpu int, epoch uint64)

	// OnStep fires once per retired dispatch unit while StepArmed —
	// rip is the unit's resulting RIP, retired the instructions it
	// covered.
	OnStep(cpu int, rip uint64, retired int)

	// StepArmed gates OnStep: the engine checks it before paying for
	// the per-unit emit, so disarmed introspection costs one predictable
	// branch per unit.
	StepArmed() bool
}

// NewRunner returns the Runner implementing the dispatch mode for c.
func NewRunner(c *CPU, d Dispatch) Runner {
	switch d {
	case DispatchOracle:
		return oracleRunner{c}
	case DispatchLockstep:
		return NewLockstep(c)
	default:
		return NewEngine(c)
	}
}

// oracleRunner adapts CPU.Step to the Runner interface: one
// instruction per unit.
type oracleRunner struct{ c *CPU }

func (r oracleRunner) RunUnit(budget int) (int, error) {
	before := r.c.Steps
	err := r.c.Step()
	return int(r.c.Steps - before), err
}
