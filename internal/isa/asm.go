package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// The assembler consumes the textual "kernel source" dialect used by
// the simulated kernel. A translation unit contains function
// definitions and global variables:
//
//	; a comment
//	.func sys_example [inline] [notrace]
//	    movi r1, 10
//	    cmpi r1, 0
//	    jz .done
//	    call helper
//	.done:
//	    ret
//	.endfunc
//
//	.global counter 8          ; zero-initialized, 8 bytes
//	.data   magic   de ad be ef ; initialized bytes (hex)
//
// Functions may be marked `inline`, in which case linking with
// inlining enabled splices their bodies into callers — the mechanism
// that produces the paper's Type 2 ("involves inlining") patches — and
// `notrace`, which suppresses the ftrace prologue.

// OperandKind classifies a parsed assembly operand.
type OperandKind int

// Operand kinds.
const (
	OpndReg     OperandKind = iota + 1 // register
	OpndImm                            // integer immediate
	OpndSym                            // bare symbol reference (call/jmp/loadg/storeg target)
	OpndSymAddr                        // @symbol — address-of immediate
	OpndLabel                          // .label — local branch target
	OpndMem                            // [reg+disp]
)

// Operand is a parsed assembly operand.
type Operand struct {
	Kind OperandKind
	Reg  uint8
	Imm  int64
	Sym  string
}

// SrcInst is a parsed, unresolved instruction.
type SrcInst struct {
	Op   Op
	A, B Operand
	Line int
}

// Item is one element of a function body: either a label definition or
// an instruction.
type Item struct {
	Label string // non-empty for label items
	Inst  *SrcInst
}

// SrcFunc is a parsed function definition.
type SrcFunc struct {
	Name    string
	Inline  bool
	NoTrace bool
	Items   []Item
	Line    int
}

// Clone returns a deep copy of the function, used by the inliner so
// splicing never mutates the parsed unit.
func (f *SrcFunc) Clone() *SrcFunc {
	c := &SrcFunc{Name: f.Name, Inline: f.Inline, NoTrace: f.NoTrace, Line: f.Line}
	c.Items = make([]Item, len(f.Items))
	for i, it := range f.Items {
		c.Items[i] = it
		if it.Inst != nil {
			inst := *it.Inst
			c.Items[i].Inst = &inst
		}
	}
	return c
}

// CallTargets returns the symbols this function calls (source-level
// call edges, before any inlining). Duplicates are preserved in order.
func (f *SrcFunc) CallTargets() []string {
	var out []string
	for _, it := range f.Items {
		if it.Inst != nil && it.Inst.Op == OpCall && it.Inst.A.Kind == OpndSym {
			out = append(out, it.Inst.A.Sym)
		}
	}
	return out
}

// SrcGlobal is a parsed global variable definition.
type SrcGlobal struct {
	Name string
	Size uint64
	Init []byte // nil for .global (zero-initialized)
	Line int
}

// Unit is a parsed translation unit.
type Unit struct {
	Funcs   []*SrcFunc
	Globals []*SrcGlobal

	funcIdx map[string]*SrcFunc
	globIdx map[string]*SrcGlobal
}

// Func returns the named function, or nil.
func (u *Unit) Func(name string) *SrcFunc { return u.funcIdx[name] }

// Global returns the named global, or nil.
func (u *Unit) Global(name string) *SrcGlobal { return u.globIdx[name] }

// Merge appends another unit's definitions, erroring on duplicates.
// It is how the kernel build combines "source files".
func (u *Unit) Merge(other *Unit) error {
	for _, f := range other.Funcs {
		if u.funcIdx[f.Name] != nil {
			return fmt.Errorf("merge: duplicate function %q", f.Name)
		}
		u.Funcs = append(u.Funcs, f)
		u.funcIdx[f.Name] = f
	}
	for _, g := range other.Globals {
		if u.globIdx[g.Name] != nil {
			return fmt.Errorf("merge: duplicate global %q", g.Name)
		}
		u.Globals = append(u.Globals, g)
		u.globIdx[g.Name] = g
	}
	return nil
}

// SyntaxError reports an assembly parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func synErr(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse assembles source text into a Unit.
func Parse(src string) (*Unit, error) {
	u := &Unit{
		funcIdx: make(map[string]*SrcFunc),
		globIdx: make(map[string]*SrcGlobal),
	}
	var cur *SrcFunc
	for lineNo, raw := range strings.Split(src, "\n") {
		n := lineNo + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".func"):
			if cur != nil {
				return nil, synErr(n, ".func inside function %q", cur.Name)
			}
			f, err := parseFuncHeader(line, n)
			if err != nil {
				return nil, err
			}
			if u.funcIdx[f.Name] != nil {
				return nil, synErr(n, "duplicate function %q", f.Name)
			}
			cur = f
		case line == ".endfunc":
			if cur == nil {
				return nil, synErr(n, ".endfunc outside function")
			}
			u.Funcs = append(u.Funcs, cur)
			u.funcIdx[cur.Name] = cur
			cur = nil
		case strings.HasPrefix(line, ".global") || strings.HasPrefix(line, ".data"):
			if cur != nil {
				return nil, synErr(n, "data directive inside function %q", cur.Name)
			}
			g, err := parseGlobal(line, n)
			if err != nil {
				return nil, err
			}
			if u.globIdx[g.Name] != nil {
				return nil, synErr(n, "duplicate global %q", g.Name)
			}
			u.Globals = append(u.Globals, g)
			u.globIdx[g.Name] = g
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, synErr(n, "label outside function")
			}
			label := strings.TrimSuffix(line, ":")
			if !strings.HasPrefix(label, ".") || len(label) < 2 {
				return nil, synErr(n, "labels must start with '.': %q", label)
			}
			cur.Items = append(cur.Items, Item{Label: label})
		default:
			if cur == nil {
				return nil, synErr(n, "instruction outside function: %q", line)
			}
			inst, err := parseInst(line, n)
			if err != nil {
				return nil, err
			}
			cur.Items = append(cur.Items, Item{Inst: inst})
		}
	}
	if cur != nil {
		return nil, synErr(0, "unterminated function %q", cur.Name)
	}
	return u, nil
}

// MustParse parses source text, panicking on error. For tests and
// static kernel sources known to be valid.
func MustParse(src string) *Unit {
	u, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func parseFuncHeader(line string, n int) (*SrcFunc, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, synErr(n, ".func needs a name")
	}
	f := &SrcFunc{Name: fields[1], Line: n}
	for _, attr := range fields[2:] {
		switch attr {
		case "inline":
			f.Inline = true
		case "notrace":
			f.NoTrace = true
		default:
			return nil, synErr(n, "unknown function attribute %q", attr)
		}
	}
	return f, nil
}

func parseGlobal(line string, n int) (*SrcGlobal, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".global":
		if len(fields) != 3 {
			return nil, synErr(n, ".global needs name and size")
		}
		size, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil || size == 0 {
			return nil, synErr(n, "bad .global size %q", fields[2])
		}
		return &SrcGlobal{Name: fields[1], Size: size, Line: n}, nil
	case ".data":
		if len(fields) < 3 {
			return nil, synErr(n, ".data needs name and at least one byte")
		}
		init := make([]byte, 0, len(fields)-2)
		for _, hx := range fields[2:] {
			v, err := strconv.ParseUint(hx, 16, 8)
			if err != nil {
				return nil, synErr(n, "bad .data byte %q", hx)
			}
			init = append(init, byte(v))
		}
		return &SrcGlobal{Name: fields[1], Size: uint64(len(init)), Init: init, Line: n}, nil
	default:
		return nil, synErr(n, "unknown directive %q", fields[0])
	}
}

func parseInst(line string, n int) (*SrcInst, error) {
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opByMnemonic[mnemonic]
	if !ok {
		return nil, synErr(n, "unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	inst := &SrcInst{Op: op, Line: n}

	want := func(k int) error {
		if len(args) != k {
			return synErr(n, "%s expects %d operand(s), got %d", mnemonic, k, len(args))
		}
		return nil
	}

	switch op {
	case OpNop, OpRet, OpHlt:
		return inst, want(0)

	case OpTrap:
		if err := want(1); err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(args[0], 0, 16)
		if err != nil || v < 0 || v > 255 {
			return nil, synErr(n, "bad trap code %q", args[0])
		}
		inst.A = Operand{Kind: OpndImm, Imm: v}
		return inst, nil

	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		if err := want(1); err != nil {
			return nil, err
		}
		if strings.HasPrefix(args[0], ".") {
			inst.A = Operand{Kind: OpndLabel, Sym: args[0]}
		} else {
			inst.A = Operand{Kind: OpndSym, Sym: args[0]}
		}
		return inst, nil

	case OpMovi:
		if err := want(2); err != nil {
			return nil, err
		}
		r, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndReg, Reg: r}
		if strings.HasPrefix(args[1], "@") {
			inst.B = Operand{Kind: OpndSymAddr, Sym: args[1][1:]}
		} else {
			v, err := strconv.ParseInt(args[1], 0, 64)
			if err != nil {
				// Allow full-range unsigned hex immediates.
				uv, uerr := strconv.ParseUint(args[1], 0, 64)
				if uerr != nil {
					return nil, synErr(n, "bad immediate %q", args[1])
				}
				v = int64(uv)
			}
			inst.B = Operand{Kind: OpndImm, Imm: v}
		}
		return inst, nil

	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		if err := want(2); err != nil {
			return nil, err
		}
		a, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		b, err := parseReg(args[1], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndReg, Reg: a}
		inst.B = Operand{Kind: OpndReg, Reg: b}
		return inst, nil

	case OpCmpi, OpAddi, OpSubi:
		if err := want(2); err != nil {
			return nil, err
		}
		r, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(args[1], 0, 33)
		if err != nil {
			return nil, synErr(n, "bad immediate %q", args[1])
		}
		inst.A = Operand{Kind: OpndReg, Reg: r}
		inst.B = Operand{Kind: OpndImm, Imm: v}
		return inst, nil

	case OpLoad:
		if err := want(2); err != nil {
			return nil, err
		}
		r, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		memOp, err := parseMem(args[1], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndReg, Reg: r}
		inst.B = memOp
		return inst, nil

	case OpStore:
		if err := want(2); err != nil {
			return nil, err
		}
		memOp, err := parseMem(args[0], n)
		if err != nil {
			return nil, err
		}
		r, err := parseReg(args[1], n)
		if err != nil {
			return nil, err
		}
		inst.A = memOp
		inst.B = Operand{Kind: OpndReg, Reg: r}
		return inst, nil

	case OpPush, OpPop:
		if err := want(1); err != nil {
			return nil, err
		}
		r, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndReg, Reg: r}
		return inst, nil

	case OpLoadg:
		if err := want(2); err != nil {
			return nil, err
		}
		r, err := parseReg(args[0], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndReg, Reg: r}
		inst.B = Operand{Kind: OpndSym, Sym: args[1]}
		return inst, nil

	case OpStrg:
		if err := want(2); err != nil {
			return nil, err
		}
		r, err := parseReg(args[1], n)
		if err != nil {
			return nil, err
		}
		inst.A = Operand{Kind: OpndSym, Sym: args[0]}
		inst.B = Operand{Kind: OpndReg, Reg: r}
		return inst, nil
	}
	return nil, synErr(n, "unhandled mnemonic %q", mnemonic)
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string, n int) (uint8, error) {
	if s == "sp" {
		return RegSP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		v, err := strconv.Atoi(s[1:])
		if err == nil && v >= 0 && v < NumRegs {
			return uint8(v), nil
		}
	}
	return 0, synErr(n, "bad register %q", s)
}

// parseMem parses "[reg]", "[reg+disp]" or "[reg-disp]".
func parseMem(s string, n int) (Operand, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, synErr(n, "bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart, disp := inner, int64(0)
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		regPart = inner[:i]
		v, err := strconv.ParseInt(inner[i:], 0, 33)
		if err != nil {
			return Operand{}, synErr(n, "bad displacement in %q", s)
		}
		disp = v
	}
	r, err := parseReg(strings.TrimSpace(regPart), n)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Kind: OpndMem, Reg: r, Imm: disp}, nil
}
