package isa

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"kshot/internal/mem"
)

// dualRig links src twice into two identical machines: one executed by
// the oracle interpreter, one by the block engine. Everything the two
// runs can observe starts out byte-identical.
func dualRig(t *testing.T, src string, opts LinkOptions) (*Image, *CPU, *Engine, uint64) {
	t.Helper()
	if opts.TextBase == 0 {
		opts.TextBase = 0x10000
	}
	if opts.DataBase == 0 {
		opts.DataBase = 0x80000
	}
	img, err := Link(MustParse(src), opts)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	oracle, stack := testMachine(t, img)
	engineCPU, _ := testMachine(t, img)
	return img, oracle, NewEngine(engineCPU), stack
}

// callBoth calls fn under both engines and requires identical results,
// error text, retired-step counts, and full architectural state.
func callBoth(t *testing.T, img *Image, oracle *CPU, e *Engine, stack uint64, fn string, maxSteps int, args ...uint64) (uint64, error) {
	t.Helper()
	sym, ok := img.Symbols.Lookup(fn)
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	ov, oerr := oracle.Call(sym.Addr, stack, maxSteps, args...)
	ev, eerr := e.Call(sym.Addr, stack, maxSteps, args...)
	if errText(oerr) != errText(eerr) {
		t.Fatalf("%s: error mismatch: oracle %q vs blocks %q", fn, errText(oerr), errText(eerr))
	}
	if ov != ev {
		t.Fatalf("%s: result mismatch: oracle %d vs blocks %d", fn, ov, ev)
	}
	if oracle.Steps != e.C.Steps {
		t.Fatalf("%s: retired-step mismatch: oracle %d vs blocks %d", fn, oracle.Steps, e.C.Steps)
	}
	if os, es := oracle.Save(), e.C.Save(); os != es {
		t.Fatalf("%s: state mismatch:\noracle %+v\nblocks %+v", fn, os, es)
	}
	return ev, eerr
}

func TestEngineOracleParityPrograms(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		fn       string
		maxSteps int
		argSets  [][]uint64
	}{
		{"arith", `
.func compute
    mov r0, r1
    add r0, r2
    movi r3, 10
    mul r0, r3
    subi r0, 5
    ret
.endfunc
`, "compute", 1000, [][]uint64{{3, 4}, {0, 0}}},
		{"loop", `
.func sum
    movi r0, 0
.loop:
    cmpi r1, 0
    jz .done
    add r0, r1
    subi r1, 1
    jmp .loop
.done:
    ret
.endfunc
`, "sum", 10000, [][]uint64{{10}, {0}, {100}}},
		{"calls", `
.func double
    add r1, r1
    mov r0, r1
    ret
.endfunc
.func quad
    push r1
    call double
    mov r1, r0
    call double
    pop r1
    ret
.endfunc
`, "quad", 1000, [][]uint64{{5}}},
		{"globals", `
.global counter 8
.func bump
    loadg r0, counter
    addi r0, 1
    storeg counter, r0
    ret
.endfunc
`, "bump", 1000, [][]uint64{{}, {}, {}}},
		{"trap", `
.func boom
    movi r0, 7
    trap 42
    ret
.endfunc
`, "boom", 1000, [][]uint64{{}}},
		{"div-zero", `
.func d
    movi r2, 0
    div r1, r2
    ret
.endfunc
`, "d", 1000, [][]uint64{{10}}},
		{"hlt", `
.func h
    nop
    hlt
.endfunc
`, "h", 1000, [][]uint64{{}}},
		{"step-limit", `
.func spin
.l:
    addi r0, 1
    jmp .l
.endfunc
`, "spin", 100, [][]uint64{{}}},
		{"memory", `
.global arr 32
.func rot
    load r2, [r1]
    load r3, [r1+8]
    load r4, [r1+16]
    store [r1], r3
    store [r1+8], r4
    store [r1+16], r2
    load r0, [r1]
    ret
.endfunc
`, "rot", 1000, nil}, // args filled below with the symbol address
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img, oracle, e, stack := dualRig(t, tc.src, LinkOptions{})
			argSets := tc.argSets
			if argSets == nil {
				arr, ok := img.Symbols.Lookup("arr")
				if !ok {
					t.Fatal("no arr symbol")
				}
				for _, m := range []*mem.Physical{oracle.M, e.C.M} {
					for i := uint64(0); i < 3; i++ {
						if err := m.WriteU64(mem.PrivKernel, arr.Addr+8*i, 100+i); err != nil {
							t.Fatal(err)
						}
					}
				}
				argSets = [][]uint64{{arr.Addr}, {arr.Addr}}
			}
			for _, args := range argSets {
				callBoth(t, img, oracle, e, stack, tc.fn, tc.maxSteps, args...)
			}
		})
	}
}

// TestFusedCallRet covers the ftrace-prologue superinstruction: linking
// with Ftrace gives every function a `call __fentry__` whose callee is
// a bare ret — the call/ret pair must fuse into one two-step pred that
// does not terminate the block.
func TestFusedCallRet(t *testing.T) {
	src := `
.func f
    movi r0, 5
    addi r0, 2
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{Ftrace: true})
	if got, err := callBoth(t, img, oracle, e, stack, "f", 1000); err != nil || got != 7 {
		t.Fatalf("traced f() = %d, %v", got, err)
	}
	sym, _ := img.Symbols.Lookup("f")
	b := e.blocks[sym.Addr]
	if b == nil {
		t.Fatal("no cached block at traced function entry")
	}
	p := &b.preds[0]
	if p.op != OpCall || p.steps != 2 {
		t.Fatalf("entry pred op=%v steps=%d, want fused call+ret (steps 2)", p.op, p.steps)
	}
	// Fusion must not end the block: the body follows in the same block.
	if len(b.preds) < 2 {
		t.Fatalf("block has %d preds; fused prologue should be followed by the body", len(b.preds))
	}
}

// TestUnfusedCall: a call whose callee is not a bare ret stays a plain
// block terminator.
func TestUnfusedCall(t *testing.T) {
	src := `
.func helper
    movi r0, 9
    ret
.endfunc
.func f
    call helper
    addi r0, 1
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	if got, err := callBoth(t, img, oracle, e, stack, "f", 1000); err != nil || got != 10 {
		t.Fatalf("f() = %d, %v", got, err)
	}
	sym, _ := img.Symbols.Lookup("f")
	b := e.blocks[sym.Addr]
	if b == nil {
		t.Fatal("no cached block at f")
	}
	last := &b.preds[len(b.preds)-1]
	if last.op != OpCall || last.steps != 1 {
		t.Fatalf("call pred op=%v steps=%d, want unfused terminator (steps 1)", last.op, last.steps)
	}
}

// TestFusedFlagsJcc covers the ALU/cmp+jcc superinstruction in both its
// taken and untaken directions, and the unfused jcc forms (preceded by
// a non-flag-setter, and as a block leader).
func TestFusedFlagsJcc(t *testing.T) {
	src := `
.func classify
    cmpi r1, 100
    jg .big
    movi r0, 1
    ret
.big:
    movi r0, 2
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	for _, in := range []uint64{5, 500, 100} {
		callBoth(t, img, oracle, e, stack, "classify", 1000, in)
	}
	sym, _ := img.Symbols.Lookup("classify")
	b := e.blocks[sym.Addr]
	if b == nil {
		t.Fatal("no cached block at classify")
	}
	p := &b.preds[0]
	if p.op != OpCmpi || p.op2 != OpJg || p.steps != 2 {
		t.Fatalf("entry pred op=%v op2=%v steps=%d, want fused cmpi+jg", p.op, p.op2, p.steps)
	}

	// Unfused: the jcc follows a mov (not a flag setter), and — via the
	// jmp — is also entered as a block leader.
	src2 := `
.func g
    cmpi r1, 1
    mov r2, r1
    jz .one
    movi r0, 10
    ret
.one:
    movi r0, 11
    ret
.endfunc
.func h
    cmpi r1, 1
    jmp .check
.check:
    jz .one
    movi r0, 20
    ret
.one:
    movi r0, 21
    ret
.endfunc
`
	img2, oracle2, e2, stack2 := dualRig(t, src2, LinkOptions{})
	for _, in := range []uint64{0, 1} {
		callBoth(t, img2, oracle2, e2, stack2, "g", 1000, in)
		callBoth(t, img2, oracle2, e2, stack2, "h", 1000, in)
	}
	sym2, _ := img2.Symbols.Lookup("g")
	b2 := e2.blocks[sym2.Addr]
	if b2 == nil {
		t.Fatal("no cached block at g")
	}
	last := &b2.preds[len(b2.preds)-1]
	if last.op2 != 0 || last.steps != 1 {
		t.Fatalf("jcc after mov fused (op=%v op2=%v steps=%d), must stay unfused", last.op, last.op2, last.steps)
	}
}

// TestJmpChainFolding covers the trampoline superinstruction: a jmp
// whose target is another jmp folds up to maxChainHops deep, retiring
// one step per folded hop; a self-loop folds safely up to the cap.
func TestJmpChainFolding(t *testing.T) {
	src := `
.func f
    jmp .a
.dead:
    movi r0, 1
    ret
.a:
    jmp .b
.b:
    jmp .done
.done:
    movi r0, 42
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	if got, err := callBoth(t, img, oracle, e, stack, "f", 1000); err != nil || got != 42 {
		t.Fatalf("f() = %d, %v", got, err)
	}
	sym, _ := img.Symbols.Lookup("f")
	b := e.blocks[sym.Addr]
	if b == nil {
		t.Fatal("no cached block at f")
	}
	p := &b.preds[0]
	if p.op != OpJmp || p.steps != 3 {
		t.Fatalf("chain pred op=%v steps=%d, want 3-hop folded jmp", p.op, p.steps)
	}
	done, _ := img.Symbols.Lookup("f")
	_ = done

	// Self-loop: folding must cap, execution must hit the step limit in
	// lockstep with the oracle.
	src2 := ".func spin\n.l:\njmp .l\n.endfunc"
	img2, oracle2, e2, stack2 := dualRig(t, src2, LinkOptions{})
	if _, err := callBoth(t, img2, oracle2, e2, stack2, "spin", 100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("spin: want ErrStepLimit, got %v", err)
	}
	sym2, _ := img2.Symbols.Lookup("spin")
	if b2 := e2.blocks[sym2.Addr]; b2 != nil && b2.preds[0].steps > maxChainHops {
		t.Fatalf("self-loop folded %d hops, cap is %d", b2.preds[0].steps, maxChainHops)
	}
}

// TestEpochInvalidationRedecode is the core cache-coherence property: a
// trampoline write into a cached function's text (exactly what patch
// application does) must flush the engine's cache, and the next
// dispatch must execute the rewritten code.
func TestEpochInvalidationRedecode(t *testing.T) {
	src := `
.func f
    movi r0, 1
    ret
.endfunc
.func f_v2
    movi r0, 2
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	if got, err := callBoth(t, img, oracle, e, stack, "f", 1000); err != nil || got != 1 {
		t.Fatalf("pre-patch f() = %d, %v", got, err)
	}
	f, _ := img.Symbols.Lookup("f")
	v2, _ := img.Symbols.Lookup("f_v2")
	if e.blocks[f.Addr] == nil {
		t.Fatal("f's block not cached before the patch")
	}
	rel, err := JmpRel32To(f.Addr, v2.Addr)
	if err != nil {
		t.Fatal(err)
	}
	tramp := EncodeJmpRel32(rel)
	flushesBefore := e.Stats().Flushes
	for _, m := range []*mem.Physical{oracle.M, e.C.M} {
		if err := m.Write(mem.PrivSMM, f.Addr, tramp); err != nil {
			t.Fatalf("trampoline write: %v", err)
		}
	}
	if got, err := callBoth(t, img, oracle, e, stack, "f", 1000); err != nil || got != 2 {
		t.Fatalf("post-patch f() = %d, %v (stale block executed?)", got, err)
	}
	if e.Stats().Flushes == flushesBefore {
		t.Fatal("trampoline write did not flush the block cache")
	}
}

// TestSelfModifyingStoreEndsUnit: code that rewrites its own upcoming
// instruction mid-block. The engine's post-store epoch check must end
// the unit so the next dispatch decodes the new bytes — observationally
// identical to the oracle, which naturally fetches them.
func TestSelfModifyingStoreEndsUnit(t *testing.T) {
	run := func(exec func(c *CPU, entry, stack uint64) (uint64, error)) (uint64, uint64, *Engine) {
		m := mem.New(1 << 20)
		if _, err := m.Map("rwx", 0x1000, 0x1000, mem.Perms{SMM: mem.PermRWX}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map("stack", 0x4000, 0x1000, mem.Perms{SMM: mem.PermRW}); err != nil {
			t.Fatal(err)
		}
		// Replacement bytes: addi r0, 1 (6 bytes) + 2 nops = exactly 8.
		repl := append(MustEncode(Inst{Op: OpAddi, Dst: 0, Imm: 1}), byte(OpNop), byte(OpNop))
		patchWord := binary.LittleEndian.Uint64(repl)

		entry := uint64(0x1000)
		// movi r0, 100; movi r2, patchWord; strg [target], r2;
		// target: trap 9 + 6 nops (8 bytes, overwritten); ret
		code := MustEncode(
			Inst{Op: OpMovi, Dst: 0, Imm: 100},
			Inst{Op: OpMovi, Dst: 2, Imm: int64(patchWord)},
		)
		target := entry + uint64(len(code)) + LenAbs
		code = append(code, MustEncode(Inst{Op: OpStrg, Src: 2, Imm: int64(target)})...)
		code = append(code, MustEncode(Inst{Op: OpTrap, Imm: 9})...)
		for len(code) < int(target-entry)+8 {
			code = append(code, byte(OpNop))
		}
		code = append(code, MustEncode(Inst{Op: OpRet})...)
		if err := m.Write(mem.PrivSMM, entry, code); err != nil {
			t.Fatal(err)
		}
		c := New(m, mem.PrivSMM)
		got, err := exec(c, entry, 0x5000)
		if err != nil {
			t.Fatalf("self-modifying run: %v", err)
		}
		return got, c.Steps, nil
	}

	oGot, oSteps, _ := run(func(c *CPU, entry, stack uint64) (uint64, error) {
		return c.Call(entry, stack, 1000)
	})
	var eng *Engine
	eGot, eSteps, _ := run(func(c *CPU, entry, stack uint64) (uint64, error) {
		eng = NewEngine(c)
		return eng.Call(entry, stack, 1000)
	})
	if oGot != eGot || oSteps != eSteps {
		t.Fatalf("self-modifying code: oracle (%d, %d steps) vs blocks (%d, %d steps)",
			oGot, oSteps, eGot, eSteps)
	}
	if want := uint64(101); eGot != want {
		t.Fatalf("patched instruction did not execute: got %d, want %d", eGot, want)
	}
	if eng.Stats().Flushes == 0 {
		t.Fatal("self-modifying store did not flush the block cache")
	}
}

// TestBudgetSemantics: a unit never retires more than its budget, a
// fused pred that cannot fit falls back to a single oracle step, and a
// mid-block stop commits RIP at the next unexecuted instruction.
func TestBudgetSemantics(t *testing.T) {
	src := `
.func f
    movi r1, 1
    movi r2, 2
    cmpi r1, 1
    jz .eq
    movi r0, 0
    ret
.eq:
    movi r0, 9
    ret
.endfunc
`
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	sym, _ := img.Symbols.Lookup("f")

	prep := func(c *CPU) {
		c.Reg = [NumRegs]uint64{}
		c.Reg[RegSP] = stack
		if err := c.push(StopAddr); err != nil {
			t.Fatal(err)
		}
		c.RIP = sym.Addr
	}

	// Budget 3 covers the two movis but not the fused cmpi+jz (2 more
	// steps): the unit stops before it with RIP on the cmpi.
	prep(e.C)
	n, err := e.RunUnit(3)
	if err != nil || n != 2 {
		t.Fatalf("RunUnit(3) = %d, %v; want 2 retired (stop before fused pred)", n, err)
	}
	prep(oracle)
	for i := 0; i < 2; i++ {
		if err := oracle.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if os, es := oracle.Save(), e.C.Save(); os != es {
		t.Fatalf("mid-block stop state mismatch:\noracle %+v\nblocks %+v", os, es)
	}

	// Budget 1 with the fused pred up next: single oracle-step fallback.
	fb := e.Stats().Fallbacks
	n, err = e.RunUnit(1)
	if err != nil || n != 1 {
		t.Fatalf("RunUnit(1) = %d, %v; want exactly 1", n, err)
	}
	if e.Stats().Fallbacks != fb+1 {
		t.Fatal("budget-constrained fused pred did not fall back to Step")
	}
	if err := oracle.Step(); err != nil {
		t.Fatal(err)
	}
	if os, es := oracle.Save(), e.C.Save(); os != es {
		t.Fatalf("fallback state mismatch:\noracle %+v\nblocks %+v", os, es)
	}
}

// TestEngineCacheStats: repeated execution hits the cache.
func TestEngineCacheStats(t *testing.T) {
	src := ".func f\nmovi r0, 3\nret\n.endfunc"
	img, oracle, e, stack := dualRig(t, src, LinkOptions{})
	for i := 0; i < 5; i++ {
		callBoth(t, img, oracle, e, stack, "f", 1000)
	}
	st := e.Stats()
	if st.Decodes == 0 || st.Hits == 0 {
		t.Fatalf("stats %+v: want decodes and hits after repeated calls", st)
	}
}

// TestLockstepParity: the lockstep runner executes real programs to the
// same result as a plain oracle, verifying units as it goes.
func TestLockstepParity(t *testing.T) {
	src := `
.func sum
    movi r0, 0
.loop:
    cmpi r1, 0
    jz .done
    add r0, r1
    subi r1, 1
    jmp .loop
.done:
    ret
.endfunc
`
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatal(err)
	}
	oracle, ostack := testMachine(t, img)
	c, stack := testMachine(t, img)
	ls := NewLockstep(c)
	sym, _ := img.Symbols.Lookup("sum")

	want, err := oracle.Call(sym.Addr, ostack, 10000, 10)
	if err != nil {
		t.Fatal(err)
	}

	c.Reg = [NumRegs]uint64{}
	c.Reg[RegSP] = stack
	c.Reg[1] = 10
	if err := c.push(StopAddr); err != nil {
		t.Fatal(err)
	}
	c.RIP = sym.Addr
	for i := 0; i < 1000 && !c.Done(); i++ {
		if _, err := ls.RunUnit(64); err != nil {
			t.Fatalf("lockstep unit: %v", err)
		}
	}
	if !c.Done() {
		t.Fatal("lockstep run did not complete")
	}
	if c.Reg[0] != want {
		t.Fatalf("lockstep sum(10) = %d, oracle says %d", c.Reg[0], want)
	}
	if ls.Units() == 0 {
		t.Fatal("no units verified")
	}
}

// TestLockstepDetectsDivergence proves the differential check is not
// vacuous: a deliberately corrupted cached block must be reported as a
// DivergenceError naming the failing comparison.
func TestLockstepDetectsDivergence(t *testing.T) {
	src := ".func f\nmovi r0, 1\nmovi r1, 2\nret\n.endfunc"
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatal(err)
	}
	c, stack := testMachine(t, img)
	ls := NewLockstep(c)
	sym, _ := img.Symbols.Lookup("f")

	c.Reg = [NumRegs]uint64{}
	c.Reg[RegSP] = stack
	if err := c.push(StopAddr); err != nil {
		t.Fatal(err)
	}
	c.RIP = sym.Addr

	// Plant a corrupted block: same shape the decoder would produce,
	// but with a wrong immediate — a model of a block-engine bug.
	eng := ls.Engine()
	b := eng.decodeBlock(sym.Addr)
	if b == nil {
		t.Fatal("decodeBlock failed")
	}
	b.preds[0].imm = 999
	eng.blocks[sym.Addr] = b
	eng.epoch = c.M.CodeEpoch()

	_, err = ls.RunUnit(64)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("corrupted block not detected: err = %v", err)
	}
	if div.What != "architectural state mismatch" {
		t.Fatalf("divergence classified as %q, want architectural state mismatch", div.What)
	}
	if !strings.Contains(div.Error(), "architectural state mismatch") {
		t.Fatalf("DivergenceError text %q lacks the failing comparison", div.Error())
	}
}

// TestDispatchParse pins the mode names used by flags and options.
func TestDispatchParse(t *testing.T) {
	for _, d := range []Dispatch{DispatchBlocks, DispatchOracle, DispatchLockstep} {
		got, err := ParseDispatch(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDispatch(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDispatch("nope"); err == nil {
		t.Error("ParseDispatch accepted an unknown mode")
	}
	if DispatchBlocks != 0 {
		t.Error("DispatchBlocks must be the zero value (the default)")
	}
}
