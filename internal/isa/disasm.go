package isa

import "fmt"

// Decoded is one disassembled instruction with its location.
type Decoded struct {
	Addr uint64
	Inst Inst
	Len  int
}

// BranchTarget returns the absolute target address of a branch
// instruction (call/jmp/jcc), and whether the instruction is one.
func (d Decoded) BranchTarget() (uint64, bool) {
	if !d.Inst.Op.IsBranch() {
		return 0, false
	}
	return uint64(int64(d.Addr) + int64(d.Len) + d.Inst.Imm), true
}

// Disassemble decodes the byte range as a linear instruction stream
// starting at base. It fails on any invalid or truncated encoding —
// linked images contain no embedded data in text, so a failure
// indicates corruption (which is exactly what the introspection
// checks look for).
func Disassemble(code []byte, base uint64) ([]Decoded, error) {
	var out []Decoded
	off := 0
	for off < len(code) {
		inst, n, err := Decode(code[off:])
		if err != nil {
			return nil, fmt.Errorf("disasm at %#x: %w", base+uint64(off), err)
		}
		out = append(out, Decoded{Addr: base + uint64(off), Inst: inst, Len: n})
		off += n
	}
	return out, nil
}

// FtracePrologueLen is the length of the kernel tracing prologue
// (`call __fentry__`), the 5-byte sequence KShot must skip when
// patching traced functions (§V-A "Supporting Kernel Tracing").
const FtracePrologueLen = LenBranch

// HasFtracePrologue reports whether the function bytes begin with a
// `call rel32` whose target is fentryAddr. Patching code uses this
// signature check rather than trusting symbol metadata, as the paper's
// prototype identifies the 5-byte trace signature in the binary.
func HasFtracePrologue(code []byte, funcAddr, fentryAddr uint64) bool {
	if len(code) < FtracePrologueLen || Op(code[0]) != OpCall {
		return false
	}
	inst, n, err := Decode(code)
	if err != nil || n != FtracePrologueLen {
		return false
	}
	return uint64(int64(funcAddr)+int64(n)+inst.Imm) == fentryAddr
}
