package isa

import (
	"encoding/binary"
	"fmt"
)

// Encode appends the binary encoding of inst to dst and returns the
// extended slice. It returns an error for invalid opcodes or operands.
func Encode(dst []byte, inst Inst) ([]byte, error) {
	if err := validate(inst); err != nil {
		return dst, err
	}
	dst = append(dst, byte(inst.Op))
	switch inst.Op {
	case OpNop, OpRet, OpHlt:
		// opcode only
	case OpTrap:
		dst = append(dst, byte(inst.Imm))
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		dst = appendI32(dst, int32(inst.Imm))
	case OpMovi:
		dst = append(dst, inst.Dst)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(inst.Imm))
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		dst = append(dst, inst.Dst, inst.Src)
	case OpCmpi, OpAddi, OpSubi:
		dst = append(dst, inst.Dst)
		dst = appendI32(dst, int32(inst.Imm))
	case OpLoad, OpStore:
		dst = append(dst, inst.Dst, inst.Src)
		dst = appendI32(dst, int32(inst.Imm))
	case OpPush, OpPop:
		dst = append(dst, inst.Dst)
	case OpLoadg:
		dst = append(dst, inst.Dst)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(inst.Imm))
	case OpStrg:
		dst = append(dst, inst.Src)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(inst.Imm))
	}
	return dst, nil
}

func validate(inst Inst) error {
	if inst.Op.Length() == 0 {
		return fmt.Errorf("encode: invalid opcode %#02x", byte(inst.Op))
	}
	if inst.Dst >= NumRegs || inst.Src >= NumRegs {
		return fmt.Errorf("encode %s: register out of range", inst.Op.Mnemonic())
	}
	if inst.Op.IsBranch() || inst.Op == OpCmpi || inst.Op == OpAddi || inst.Op == OpSubi ||
		inst.Op == OpLoad || inst.Op == OpStore {
		if inst.Imm > 1<<31-1 || inst.Imm < -(1<<31) {
			return fmt.Errorf("encode %s: immediate %d exceeds 32 bits", inst.Op.Mnemonic(), inst.Imm)
		}
	}
	if inst.Op == OpTrap && (inst.Imm < 0 || inst.Imm > 255) {
		return fmt.Errorf("encode trap: code %d exceeds 8 bits", inst.Imm)
	}
	return nil
}

func appendI32(dst []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(v))
}

// Decode decodes one instruction from the start of b. It returns the
// instruction and its encoded length.
func Decode(b []byte) (Inst, int, error) {
	if len(b) == 0 {
		return Inst{}, 0, fmt.Errorf("decode: empty input")
	}
	op := Op(b[0])
	n := op.Length()
	if n == 0 {
		return Inst{}, 0, fmt.Errorf("decode: invalid opcode %#02x", b[0])
	}
	if len(b) < n {
		return Inst{}, 0, fmt.Errorf("decode %s: truncated instruction (%d of %d bytes)",
			op.Mnemonic(), len(b), n)
	}
	inst := Inst{Op: op}
	switch op {
	case OpNop, OpRet, OpHlt:
	case OpTrap:
		inst.Imm = int64(b[1])
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(b[1:5])))
	case OpMovi:
		inst.Dst = b[1]
		inst.Imm = int64(binary.LittleEndian.Uint64(b[2:10]))
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		inst.Dst, inst.Src = b[1], b[2]
	case OpCmpi, OpAddi, OpSubi:
		inst.Dst = b[1]
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(b[2:6])))
	case OpLoad, OpStore:
		inst.Dst, inst.Src = b[1], b[2]
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(b[3:7])))
	case OpPush, OpPop:
		inst.Dst = b[1]
	case OpLoadg:
		inst.Dst = b[1]
		inst.Imm = int64(binary.LittleEndian.Uint64(b[2:10]))
	case OpStrg:
		inst.Src = b[1]
		inst.Imm = int64(binary.LittleEndian.Uint64(b[2:10]))
	}
	if inst.Dst >= NumRegs || inst.Src >= NumRegs {
		return Inst{}, 0, fmt.Errorf("decode %s: register out of range", op.Mnemonic())
	}
	return inst, n, nil
}

// MustEncode encodes a sequence of instructions, panicking on error.
// It is intended for tests and static code generation where the
// instructions are compile-time constants.
func MustEncode(insts ...Inst) []byte {
	var out []byte
	var err error
	for _, in := range insts {
		out, err = Encode(out, in)
		if err != nil {
			panic(err)
		}
	}
	return out
}

// EncodeJmpRel32 returns the 5-byte encoding of a jmp with the given
// rel32 displacement. This is the trampoline instruction KShot writes
// at the entry of a vulnerable function (§V-C).
func EncodeJmpRel32(rel int32) []byte {
	b := make([]byte, 0, LenBranch)
	b = append(b, byte(OpJmp))
	return appendI32(b, rel)
}

// JmpRel32To computes the rel32 displacement for a 5-byte jmp placed at
// `from` whose target is `to`: to − (from + 5). It returns an error if
// the displacement does not fit in 32 bits.
func JmpRel32To(from, to uint64) (int32, error) {
	d := int64(to) - int64(from) - LenBranch
	if d > 1<<31-1 || d < -(1<<31) {
		return 0, fmt.Errorf("jmp from %#x to %#x: displacement %d exceeds rel32", from, to, d)
	}
	return int32(d), nil
}
