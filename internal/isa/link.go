package isa

import (
	"fmt"
	"sort"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymFunc SymKind = iota + 1
	SymObject
)

// Symbol is one entry of the linked image's symbol table (the analogue
// of the kernel's kallsyms).
type Symbol struct {
	Name   string
	Kind   SymKind
	Addr   uint64
	Size   uint64
	Traced bool // function compiled with the 5-byte ftrace prologue
}

// SymTab is an address- and name-indexed symbol table.
type SymTab struct {
	syms   []Symbol // sorted by Addr
	byName map[string]int
}

// NewSymTab builds a symbol table from entries (copied, then sorted by
// address). Duplicate names are an error.
func NewSymTab(entries []Symbol) (*SymTab, error) {
	t := &SymTab{
		syms:   append([]Symbol(nil), entries...),
		byName: make(map[string]int, len(entries)),
	}
	sort.Slice(t.syms, func(i, j int) bool { return t.syms[i].Addr < t.syms[j].Addr })
	for i, s := range t.syms {
		if _, dup := t.byName[s.Name]; dup {
			return nil, fmt.Errorf("symtab: duplicate symbol %q", s.Name)
		}
		t.byName[s.Name] = i
	}
	return t, nil
}

// Lookup returns the symbol with the given name.
func (t *SymTab) Lookup(name string) (Symbol, bool) {
	i, ok := t.byName[name]
	if !ok {
		return Symbol{}, false
	}
	return t.syms[i], true
}

// At returns the symbol whose [Addr, Addr+Size) range contains addr.
func (t *SymTab) At(addr uint64) (Symbol, bool) {
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].Addr > addr })
	if i == 0 {
		return Symbol{}, false
	}
	s := t.syms[i-1]
	if addr < s.Addr+s.Size {
		return s, true
	}
	return Symbol{}, false
}

// All returns all symbols in address order. The caller must not modify
// the returned slice.
func (t *SymTab) All() []Symbol { return t.syms }

// Funcs returns the function symbols in address order.
func (t *SymTab) Funcs() []Symbol {
	var out []Symbol
	for _, s := range t.syms {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	return out
}

// Image is a linked binary: text and data bytes with their load
// addresses, plus the symbol table. It is the simulated equivalent of
// a compiled kernel (or kernel patch) image.
type Image struct {
	Text     []byte
	TextBase uint64
	Data     []byte
	DataBase uint64
	Symbols  *SymTab
}

// FuncBytes returns the encoded bytes of the named function.
func (img *Image) FuncBytes(name string) ([]byte, error) {
	s, ok := img.Symbols.Lookup(name)
	if !ok || s.Kind != SymFunc {
		return nil, fmt.Errorf("image: no function %q", name)
	}
	off := s.Addr - img.TextBase
	return img.Text[off : off+s.Size], nil
}

// LinkOptions control code generation, mirroring the kernel build
// configuration KShot must reproduce on the patch server (§V-A).
type LinkOptions struct {
	TextBase uint64
	DataBase uint64

	// Ftrace compiles every function not marked notrace with a 5-byte
	// `call __fentry__` prologue, as Linux does with tracing enabled.
	Ftrace bool

	// Inline expands calls to functions marked inline, the compiler
	// optimization that produces Type 2 patches.
	Inline bool

	// MaxInlineDepth bounds transitive inline expansion (default 8).
	MaxInlineDepth int
}

const defaultMaxInlineDepth = 8

// fentryName is the ftrace prologue target, as in the Linux kernel.
const fentryName = "__fentry__"

// Link assembles and lays out a unit into an Image.
func Link(u *Unit, opts LinkOptions) (*Image, error) {
	depth := opts.MaxInlineDepth
	if depth == 0 {
		depth = defaultMaxInlineDepth
	}

	funcs := make([]*SrcFunc, 0, len(u.Funcs)+1)
	for _, f := range u.Funcs {
		if opts.Inline && f.Inline {
			// Like C static inline functions, inline-marked functions
			// are expanded into their callers and emit no standalone
			// symbol. This is what makes a patch to an inline function
			// implicate its callers (the paper's Type 2 case).
			continue
		}
		g := f.Clone()
		if opts.Inline {
			var err error
			g, err = expandInlines(u, g, depth)
			if err != nil {
				return nil, err
			}
		}
		funcs = append(funcs, g)
	}
	if opts.Ftrace && u.Func(fentryName) == nil {
		// Provide the default no-op tracing stub, as the kernel would.
		funcs = append(funcs, &SrcFunc{
			Name:    fentryName,
			NoTrace: true,
			Items:   []Item{{Inst: &SrcInst{Op: OpRet}}},
		})
	}

	// Prepend the ftrace prologue where configured.
	for _, f := range funcs {
		if opts.Ftrace && !f.NoTrace {
			pro := Item{Inst: &SrcInst{Op: OpCall, A: Operand{Kind: OpndSym, Sym: fentryName}}}
			f.Items = append([]Item{pro}, f.Items...)
		}
	}

	// Pass 1: place functions and compute label offsets.
	var placed []placedFunc
	cursor := opts.TextBase
	for _, f := range funcs {
		p := placedFunc{src: f, addr: cursor, labels: make(map[string]uint64)}
		off := uint64(0)
		for _, it := range f.Items {
			if it.Label != "" {
				if _, dup := p.labels[it.Label]; dup {
					return nil, fmt.Errorf("link %s: duplicate label %q", f.Name, it.Label)
				}
				p.labels[it.Label] = cursor + off
				continue
			}
			n := it.Inst.Op.Length()
			if n == 0 {
				return nil, fmt.Errorf("link %s: invalid opcode at line %d", f.Name, it.Inst.Line)
			}
			off += uint64(n)
		}
		p.size = off
		placed = append(placed, p)
		cursor += off
	}

	// Place globals in the data segment, 8-byte aligned.
	dataCursor := uint64(0)
	type placedGlobal struct {
		src  *SrcGlobal
		addr uint64
	}
	var globals []placedGlobal
	for _, g := range u.Globals {
		dataCursor = align8(dataCursor)
		globals = append(globals, placedGlobal{src: g, addr: opts.DataBase + dataCursor})
		dataCursor += g.Size
	}
	data := make([]byte, dataCursor)
	for _, g := range globals {
		copy(data[g.addr-opts.DataBase:], g.src.Init)
	}

	// Build the symbol table before emission so operands can resolve.
	syms := make([]Symbol, 0, len(placed)+len(globals))
	for _, p := range placed {
		syms = append(syms, Symbol{
			Name:   p.src.Name,
			Kind:   SymFunc,
			Addr:   p.addr,
			Size:   p.size,
			Traced: opts.Ftrace && !p.src.NoTrace,
		})
	}
	for _, g := range globals {
		syms = append(syms, Symbol{Name: g.src.Name, Kind: SymObject, Addr: g.addr, Size: g.src.Size})
	}
	symtab, err := NewSymTab(syms)
	if err != nil {
		return nil, err
	}

	// Pass 2: emit with resolved operands.
	text := make([]byte, 0, cursor-opts.TextBase)
	for _, p := range placed {
		at := p.addr
		for _, it := range p.src.Items {
			if it.Label != "" {
				continue
			}
			inst, err := resolveInst(it.Inst, at, p.labels, symtab, p.src.Name)
			if err != nil {
				return nil, err
			}
			text, err = Encode(text, inst)
			if err != nil {
				return nil, fmt.Errorf("link %s: line %d: %w", p.src.Name, it.Inst.Line, err)
			}
			at += uint64(inst.Op.Length())
		}
	}

	return &Image{
		Text:     text,
		TextBase: opts.TextBase,
		Data:     data,
		DataBase: opts.DataBase,
		Symbols:  symtab,
	}, nil
}

// placedFunc is a function fixed at its final text address during
// pass 1, before operand resolution.
type placedFunc struct {
	src    *SrcFunc
	addr   uint64
	size   uint64
	labels map[string]uint64 // label -> absolute address
}

func resolveInst(si *SrcInst, at uint64, labels map[string]uint64, symtab *SymTab, fn string) (Inst, error) {
	inst := Inst{Op: si.Op}
	resolveBranch := func(o Operand) error {
		var target uint64
		switch o.Kind {
		case OpndLabel:
			t, ok := labels[o.Sym]
			if !ok {
				return fmt.Errorf("link %s: line %d: undefined label %q", fn, si.Line, o.Sym)
			}
			target = t
		case OpndSym:
			s, ok := symtab.Lookup(o.Sym)
			if !ok {
				return fmt.Errorf("link %s: line %d: undefined symbol %q", fn, si.Line, o.Sym)
			}
			target = s.Addr
		default:
			return fmt.Errorf("link %s: line %d: bad branch operand", fn, si.Line)
		}
		rel, err := JmpRel32To(at, target)
		if err != nil {
			return fmt.Errorf("link %s: line %d: %w", fn, si.Line, err)
		}
		inst.Imm = int64(rel)
		return nil
	}

	switch si.Op {
	case OpNop, OpRet, OpHlt:
	case OpTrap:
		inst.Imm = si.A.Imm
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		if err := resolveBranch(si.A); err != nil {
			return Inst{}, err
		}
	case OpMovi:
		inst.Dst = si.A.Reg
		switch si.B.Kind {
		case OpndImm:
			inst.Imm = si.B.Imm
		case OpndSymAddr:
			s, ok := symtab.Lookup(si.B.Sym)
			if !ok {
				return Inst{}, fmt.Errorf("link %s: line %d: undefined symbol %q", fn, si.Line, si.B.Sym)
			}
			inst.Imm = int64(s.Addr)
		default:
			return Inst{}, fmt.Errorf("link %s: line %d: bad movi operand", fn, si.Line)
		}
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		inst.Dst, inst.Src = si.A.Reg, si.B.Reg
	case OpCmpi, OpAddi, OpSubi:
		inst.Dst, inst.Imm = si.A.Reg, si.B.Imm
	case OpLoad:
		inst.Dst, inst.Src, inst.Imm = si.A.Reg, si.B.Reg, si.B.Imm
	case OpStore:
		inst.Dst, inst.Imm, inst.Src = si.A.Reg, si.A.Imm, si.B.Reg
	case OpPush, OpPop:
		inst.Dst = si.A.Reg
	case OpLoadg:
		s, ok := symtab.Lookup(si.B.Sym)
		if !ok {
			return Inst{}, fmt.Errorf("link %s: line %d: undefined global %q", fn, si.Line, si.B.Sym)
		}
		inst.Dst, inst.Imm = si.A.Reg, int64(s.Addr)
	case OpStrg:
		s, ok := symtab.Lookup(si.A.Sym)
		if !ok {
			return Inst{}, fmt.Errorf("link %s: line %d: undefined global %q", fn, si.Line, si.A.Sym)
		}
		inst.Src, inst.Imm = si.B.Reg, int64(s.Addr)
	default:
		return Inst{}, fmt.Errorf("link %s: line %d: unhandled opcode", fn, si.Line)
	}
	return inst, nil
}

// expandInlines splices the bodies of inline-marked callees into f,
// recursively up to depth levels. Inline functions must end with a
// single ret and contain no other rets; the splice drops that trailing
// ret and renames labels to keep them unique.
func expandInlines(u *Unit, f *SrcFunc, depth int) (*SrcFunc, error) {
	if depth < 0 {
		return nil, fmt.Errorf("inline: expansion too deep in %q (cycle among inline functions?)", f.Name)
	}
	out := &SrcFunc{Name: f.Name, Inline: f.Inline, NoTrace: f.NoTrace, Line: f.Line}
	seq := 0
	for _, it := range f.Items {
		if it.Inst == nil || it.Inst.Op != OpCall || it.Inst.A.Kind != OpndSym {
			out.Items = append(out.Items, it)
			continue
		}
		callee := u.Func(it.Inst.A.Sym)
		if callee == nil || !callee.Inline {
			out.Items = append(out.Items, it)
			continue
		}
		expanded, err := expandInlines(u, callee.Clone(), depth-1)
		if err != nil {
			return nil, err
		}
		body, err := inlineBody(expanded, f.Name, seq)
		if err != nil {
			return nil, err
		}
		seq++
		out.Items = append(out.Items, body...)
	}
	return out, nil
}

func inlineBody(callee *SrcFunc, caller string, seq int) ([]Item, error) {
	items := callee.Items
	// Locate and drop the single trailing ret.
	last := len(items) - 1
	for last >= 0 && items[last].Label != "" {
		last--
	}
	if last < 0 || items[last].Inst.Op != OpRet {
		return nil, fmt.Errorf("inline %s into %s: inline functions must end with ret", callee.Name, caller)
	}
	for i, it := range items {
		if i != last && it.Inst != nil && it.Inst.Op == OpRet {
			return nil, fmt.Errorf("inline %s into %s: multiple rets in inline function", callee.Name, caller)
		}
	}
	rename := func(l string) string { return fmt.Sprintf(".__inl%d_%s%s", seq, callee.Name, l) }
	var out []Item
	for i, it := range items {
		if i == last {
			continue
		}
		if it.Label != "" {
			out = append(out, Item{Label: rename(it.Label)})
			continue
		}
		inst := *it.Inst
		if inst.A.Kind == OpndLabel {
			inst.A.Sym = rename(inst.A.Sym)
		}
		if inst.B.Kind == OpndLabel {
			inst.B.Sym = rename(inst.B.Sym)
		}
		out = append(out, Item{Inst: &inst})
	}
	return out, nil
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }
