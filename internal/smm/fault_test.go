package smm

import (
	"errors"
	"testing"

	"kshot/internal/faultinject"
)

// An injected SMI refusal surfaces before any world switch: the
// handler never runs, no pause is charged, and the next SMI goes
// through untouched.
func TestInjectedSMIRefusal(t *testing.T) {
	_, c := newTestPlatform(t)
	ran := 0
	if err := c.Register(Command(0x10), func(ctx *Context, arg uint64) error {
		ran++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(); err != nil {
		t.Fatal(err)
	}

	c.SetFaultInjector(faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.SMMRefuse, Call: 0},
	)))

	err := c.Trigger(Command(0x10), 0)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Trigger error = %v, want injected refusal", err)
	}
	if ran != 0 {
		t.Fatal("handler ran despite refused SMI")
	}
	if c.Entries() != 0 {
		t.Fatalf("refused SMI counted as entry (%d)", c.Entries())
	}
	if c.TotalPause() != 0 {
		t.Fatalf("refused SMI charged pause %v", c.TotalPause())
	}

	// The schedule is exhausted: delivery recovers.
	if err := c.Trigger(Command(0x10), 0); err != nil {
		t.Fatalf("second Trigger: %v", err)
	}
	if ran != 1 || c.Entries() != 1 {
		t.Fatalf("recovery SMI: ran=%d entries=%d", ran, c.Entries())
	}
}
