package smm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"kshot/internal/isa"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/timing"
)

const smramBase = 0xF00_0000

func newTestPlatform(t *testing.T) (*machine.Machine, *Controller) {
	t.Helper()
	m, err := machine.New(machine.Config{NumVCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	c, err := NewController(m, smramBase, &timing.Clock{}, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// loadKernel maps a tiny kernel image for workload threads.
func loadKernel(t *testing.T, m *machine.Machine) *isa.Image {
	t.Helper()
	src := `
.global ticks 8
.func work
    loadg r0, ticks
    addi r0, 1
    storeg ticks, r0
    ret
.endfunc
`
	img, err := isa.Link(isa.MustParse(src), isa.LinkOptions{TextBase: 0x10_0000, DataBase: 0x40_0000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("ktext", img.TextBase, uint64(len(img.Text)), mem.Perms{Kernel: mem.PermRX, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(mem.PrivSMM, img.TextBase, img.Text); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("kdata", img.DataBase, 4096, mem.Perms{Kernel: mem.PermRW, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestTriggerRunsHandlerPaused(t *testing.T) {
	m, c := newTestPlatform(t)
	var sawPaused bool
	if err := c.Register(0x10, func(ctx *Context, arg uint64) error {
		sawPaused = m.Paused()
		if arg != 42 {
			t.Errorf("arg = %d", arg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Trigger(0x10, 42); err != nil {
		t.Fatal(err)
	}
	if !sawPaused {
		t.Error("handler ran without machine paused")
	}
	if m.Paused() {
		t.Error("machine still paused after RSM")
	}
	if c.Entries() != 1 {
		t.Errorf("entries = %d", c.Entries())
	}
}

func TestUnclaimedSMI(t *testing.T) {
	_, c := newTestPlatform(t)
	err := c.Trigger(0x99, 0)
	if !errors.Is(err, ErrUnclaimedSMI) {
		t.Fatalf("got %v, want ErrUnclaimedSMI", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	m, c := newTestPlatform(t)
	boom := errors.New("boom")
	if err := c.Register(1, func(*Context, uint64) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := c.Trigger(1, 0); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if m.Paused() {
		t.Error("machine left paused after handler error")
	}
}

func TestLockPreventsHandlerInstall(t *testing.T) {
	_, c := newTestPlatform(t)
	if err := c.Lock(); err != nil {
		t.Fatal(err)
	}
	if !c.Locked() {
		t.Error("Locked() false")
	}
	err := c.Register(2, func(*Context, uint64) error { return nil })
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("post-lock Register = %v, want ErrLocked", err)
	}
	// Lock is idempotent.
	if err := c.Lock(); err != nil {
		t.Fatal(err)
	}
}

func TestLockedSMRAMUnreachableFromKernel(t *testing.T) {
	m, c := newTestPlatform(t)
	// Pre-lock: kernel may write SMRAM (firmware is still in charge).
	if err := m.Mem.Write(mem.PrivKernel, smramBase, []byte{1}); err != nil {
		t.Fatalf("pre-lock kernel write: %v", err)
	}
	if err := c.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(mem.PrivKernel, smramBase, []byte{2}); err == nil {
		t.Error("post-lock kernel write succeeded")
	}
	if err := m.Mem.Read(mem.PrivKernel, smramBase, make([]byte, 1)); err == nil {
		t.Error("post-lock kernel read succeeded")
	}
	if err := m.Mem.Read(mem.PrivUser, smramBase, make([]byte, 1)); err == nil {
		t.Error("post-lock user read succeeded")
	}
	// SMM always can.
	if err := m.Mem.Write(mem.PrivSMM, smramBase, []byte{3}); err != nil {
		t.Errorf("SMM write failed: %v", err)
	}
}

func TestStateSaveRestoreRoundTrip(t *testing.T) {
	m, c := newTestPlatform(t)
	// Give vCPUs distinctive state, trigger an SMI whose handler
	// scribbles on live registers, and check the RSM restore wins.
	v0 := m.VCPU(0)
	_ = v0 // state manipulation goes through States/RestoreStates

	if err := c.Register(3, func(ctx *Context, arg uint64) error {
		// A correct handler does not touch vCPU registers directly; the
		// controller must restore from SMRAM regardless.
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m.Pause()
	want := m.States()
	want[0].Reg[5] = 0x1234_5678
	want[0].RIP = 0xBEEF
	want[0].ZF = true
	want[1].Reg[7] = 99
	if err := m.RestoreStates(want); err != nil {
		t.Fatal(err)
	}
	m.Resume()

	if err := c.Trigger(3, 0); err != nil {
		t.Fatal(err)
	}
	m.Pause()
	got := m.States()
	m.Resume()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vcpu %d state not preserved across SMI:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestHandlerSMMPrivilegeAccess(t *testing.T) {
	m, c := newTestPlatform(t)
	img := loadKernel(t, m)
	sym, _ := img.Symbols.Lookup("ticks")

	if err := c.Register(4, func(ctx *Context, arg uint64) error {
		// Handler reads and writes kernel data and SMRAM heap.
		v, err := ctx.ReadU64(sym.Addr)
		if err != nil {
			return err
		}
		if err := ctx.WriteU64(sym.Addr, v+100); err != nil {
			return err
		}
		return ctx.WriteU64(ctx.HeapBase(), 0xCAFE)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Trigger(4, 0); err != nil {
		t.Fatal(err)
	}
	v, err := m.Mem.ReadU64(mem.PrivKernel, sym.Addr)
	if err != nil || v != 100 {
		t.Errorf("ticks = %d, %v; want 100", v, err)
	}
	h, err := m.Mem.ReadU64(mem.PrivSMM, c.HeapBase())
	if err != nil || h != 0xCAFE {
		t.Errorf("heap = %#x, %v", h, err)
	}
}

func TestSMIDuringWorkload(t *testing.T) {
	m, c := newTestPlatform(t)
	img := loadKernel(t, m)
	work, _ := img.Symbols.Lookup("work")

	if err := c.Register(5, func(*Context, uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < m.NumVCPUs(); i++ {
		wg.Add(1)
		go func(v *machine.VCPU) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := v.Call(work.Addr, 10000); err != nil {
					t.Errorf("work: %v", err)
					return
				}
			}
		}(m.VCPU(i))
	}
	for i := 0; i < 200; i++ {
		if err := c.Trigger(5, uint64(i)); err != nil {
			t.Fatalf("SMI %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Entries() != 200 {
		t.Errorf("entries = %d, want 200", c.Entries())
	}
}

func TestClockAdvancesOnSMI(t *testing.T) {
	_, c := newTestPlatform(t)
	if err := c.Register(6, func(ctx *Context, _ uint64) error {
		ctx.Charge(ctx.Model().KeyGen, 0, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	before := c.Clock().Now()
	if err := c.Trigger(6, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := c.Clock().Now() - before
	model := c.Model()
	want := model.SMMEntry + model.SMMExit + model.KeyGen
	if elapsed != want {
		t.Errorf("virtual elapsed = %v, want %v", elapsed, want)
	}
}

func TestNilClockDefaults(t *testing.T) {
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	c, err := NewController(m, smramBase, nil, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	if c.Clock() == nil {
		t.Error("nil clock not defaulted")
	}
}

func TestModelFixedCostsMatchPaper(t *testing.T) {
	// §VI-C2 constants must be preserved verbatim in the model.
	model := timing.Calibrated()
	if model.SMMEntry != 12900*time.Nanosecond {
		t.Errorf("SMMEntry = %v", model.SMMEntry)
	}
	if model.SMMExit != 21700*time.Nanosecond {
		t.Errorf("SMMExit = %v", model.SMMExit)
	}
	if model.KeyGen != 5200*time.Nanosecond {
		t.Errorf("KeyGen = %v", model.KeyGen)
	}
}
