// Package smm simulates x86 System Management Mode: locked SMRAM, SMI
// delivery that pauses the whole host and saves architectural state to
// the SMRAM state save area, handler execution at SMM privilege, and
// the RSM restore path.
//
// Two properties carry KShot's security argument and are enforced
// here exactly as hardware enforces them:
//
//  1. After the firmware locks SMRAM, no privilege level except SMM
//     can read or write it — handler code/data and the state save
//     area are out of reach of a compromised kernel, and new handlers
//     cannot be installed.
//  2. An SMI is a synchronous world switch: every vCPU halts at an
//     instruction boundary, its state is saved to SMRAM, the handler
//     runs on a quiescent machine, and RSM restores the saved state
//     bit-for-bit. The OS needs no checkpointing cooperation — the
//     hardware does it, which is the paper's overhead argument.
//
// Handler bodies are Go functions rather than interpreted code — they
// stand in for C firmware compiled into the BIOS — but every memory
// effect they have goes through SMM-privilege accesses on the shared
// physical memory, so isolation violations fault identically to
// hardware.
package smm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/isa"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// SMRAM layout constants.
const (
	// RegionSMRAM is the region name of the mapped SMRAM (TSEG).
	RegionSMRAM = "smram"

	// DefaultSMRAMSize is the simulated TSEG size.
	DefaultSMRAMSize = 4 << 20

	// saveSlotSize is the per-vCPU state save slot, matching the
	// 512-byte save state area of real SMM.
	saveSlotSize = 0x200

	// heapOffset is where handler-persistent storage begins inside
	// SMRAM (after the save area).
	heapOffset = 0x8000
)

// Command is an SMI command code, modeled on the byte written to the
// APM command port (0xB2) on real chipsets.
type Command uint8

// Errors.
var (
	// ErrLocked is returned when installing a handler after the
	// firmware locked SMRAM — the operation an SMM rootkit would need.
	ErrLocked = errors.New("smm: SMRAM is locked")

	// ErrUnclaimedSMI is returned when no handler is registered for a
	// triggered command.
	ErrUnclaimedSMI = errors.New("smm: unclaimed SMI command")
)

// Handler is an SMM handler body, invoked with the machine paused.
// Its only access to the platform is the Context.
type Handler func(ctx *Context, arg uint64) error

// Controller is the SMM side of the simulated platform: it owns SMRAM
// and dispatches SMIs.
type Controller struct {
	machine *machine.Machine
	base    uint64
	size    uint64
	clock   *timing.Clock
	model   timing.Model

	mu       sync.Mutex
	locked   bool
	handlers map[Command]Handler
	fi       *faultinject.Set
	obs      *obs.Hooks
	intr     Introspector

	entries uint64        // SMIs dispatched
	pause   time.Duration // total virtual OS-pause across all SMIs
}

// NewController maps SMRAM at base and returns the controller. SMRAM
// starts unlocked (boot time): the "firmware" may install handlers,
// and kernel-privilege writes still succeed, as on real hardware
// before the D_LCK bit is set. Call Lock before handing control to
// the OS.
func NewController(m *machine.Machine, base uint64, clock *timing.Clock, model timing.Model) (*Controller, error) {
	if clock == nil {
		clock = &timing.Clock{}
	}
	c := &Controller{
		machine:  m,
		base:     base,
		size:     DefaultSMRAMSize,
		clock:    clock,
		model:    model,
		handlers: make(map[Command]Handler),
	}
	if _, err := m.Mem.Map(RegionSMRAM, base, c.size, mem.Perms{
		Kernel: mem.PermRW, // pre-lock only; Lock() revokes this
		SMM:    mem.PermRWX,
	}); err != nil {
		return nil, fmt.Errorf("smm: %w", err)
	}
	if heapOffset < uint64(m.NumVCPUs())*saveSlotSize {
		return nil, fmt.Errorf("smm: %d vCPUs exceed save area", m.NumVCPUs())
	}
	return c, nil
}

// Register installs a handler for an SMI command. It fails after Lock:
// handler installation is a firmware-only, boot-time operation.
func (c *Controller) Register(cmd Command, h Handler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.locked {
		return ErrLocked
	}
	c.handlers[cmd] = h
	return nil
}

// Lock sets the simulated D_LCK bit: SMRAM becomes SMM-only and the
// handler table is frozen. Idempotent.
func (c *Controller) Lock() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.locked {
		return nil
	}
	if err := c.machine.Mem.SetPerms(RegionSMRAM, mem.Perms{SMM: mem.PermRWX}); err != nil {
		return fmt.Errorf("smm lock: %w", err)
	}
	c.locked = true
	return nil
}

// Locked reports whether SMRAM is locked.
func (c *Controller) Locked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.locked
}

// Entries returns the number of SMIs dispatched so far.
func (c *Controller) Entries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries
}

// TotalPause returns the cumulative virtual time the OS has spent
// paused inside SMIs: entry + exit switches plus every cost the
// handlers charged while the machine was stopped. Unlike clock spans,
// this is exact even when other goroutines (e.g. pipelined fetches)
// advance the shared clock concurrently.
func (c *Controller) TotalPause() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pause
}

// Clock returns the controller's virtual clock.
func (c *Controller) Clock() *timing.Clock { return c.clock }

// Model returns the controller's cost model.
func (c *Controller) Model() timing.Model { return c.model }

// HeapBase returns the physical address of the handler-persistent
// SMRAM heap.
func (c *Controller) HeapBase() uint64 { return c.base + heapOffset }

// HeapSize returns the heap length in bytes.
func (c *Controller) HeapSize() uint64 { return c.size - heapOffset }

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on SMI delivery.
func (c *Controller) SetFaultInjector(fi *faultinject.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fi = fi
}

// SetObserver installs (or, with nil, removes) the observability hooks
// that record SMI entries, world switches, and per-SMI pause time.
func (c *Controller) SetObserver(h *obs.Hooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = h
}

// Introspector receives SMI bracket events for the introspection
// layer. smm deliberately does not import the introspect package;
// introspect.Channel satisfies this interface and core wires it in.
type Introspector interface {
	// OnSMIEnter fires when an SMI is accepted, before the world
	// switch pauses the machine.
	OnSMIEnter(cmd uint8)

	// OnSMIExit fires after the handler returns, while the machine is
	// still paused; pause is the full virtual OS pause this SMI cost.
	OnSMIExit(cmd uint8, pause time.Duration)
}

// SetIntrospector installs (or, with nil, removes) the introspection
// sink notified on every SMI entry and exit.
func (c *Controller) SetIntrospector(i Introspector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.intr = i
}

// Trigger raises an SMI with the given command and argument: the
// machine pauses, all vCPU states are saved into the SMRAM save area,
// the handler runs, states are restored from SMRAM, and the machine
// resumes. The handler's error is returned to the (trusted) caller;
// the OS itself observes nothing but elapsed time.
func (c *Controller) Trigger(cmd Command, arg uint64) error {
	c.mu.Lock()
	h, ok := c.handlers[cmd]
	fi := c.fi
	ob := c.obs
	intr := c.intr
	c.mu.Unlock()

	// Injected delivery refusal: the chipset drops the SMI before any
	// world switch, so no state is saved and nothing pauses — the
	// failure mode of a hostile platform suppressing patching.
	if err := fi.Error(faultinject.SMMRefuse); err != nil {
		return fmt.Errorf("smm: SMI %#02x refused: %w", uint8(cmd), err)
	}

	if ob != nil {
		ob.Count(obs.CtrSMIEntries, 1)
		ob.Span(obs.PhaseSMIEnter, fmt.Sprintf("smi:%#02x", uint8(cmd)), -1, c.model.SMMEntry, 0)
	}
	if intr != nil {
		intr.OnSMIEnter(uint8(cmd))
	}

	c.machine.Pause()
	defer c.machine.Resume()
	c.clock.Advance(c.model.SMMEntry)
	defer c.clock.Advance(c.model.SMMExit)

	ctx := &Context{ctrl: c, Arg: arg}
	defer func() {
		pause := c.model.SMMEntry + c.model.SMMExit + ctx.charged
		c.mu.Lock()
		c.pause += pause
		c.mu.Unlock()
		if ob != nil {
			// The resume span carries the whole pause this SMI cost —
			// the OS observes exactly this much stolen time.
			ob.Span(obs.PhaseResume, fmt.Sprintf("smi:%#02x", uint8(cmd)), -1, pause, 0)
			ob.ObserveDur(obs.HistSMIPause, pause)
		}
		// Exit event fires while the machine is still paused (this
		// deferred func runs before the Resume defer), so a tap here
		// observes the exact post-handler, pre-resume state.
		if intr != nil {
			intr.OnSMIExit(uint8(cmd), pause)
		}
	}()

	c.mu.Lock()
	c.entries++
	c.mu.Unlock()

	if !ok {
		// Real hardware would execute a default handler; an unclaimed
		// command is a platform configuration bug.
		return fmt.Errorf("%w: %#02x", ErrUnclaimedSMI, uint8(cmd))
	}

	states := c.machine.States()
	if err := c.saveStates(states); err != nil {
		return fmt.Errorf("smm: save state: %w", err)
	}

	handlerErr := h(ctx, arg)

	restored, err := c.loadStates(len(states))
	if err != nil {
		return fmt.Errorf("smm: load state: %w", err)
	}
	if err := c.machine.RestoreStates(restored); err != nil {
		return fmt.Errorf("smm: restore state: %w", err)
	}
	return handlerErr
}

// stateSize is the serialized size of one isa.State.
const stateSize = isa.NumRegs*8 + 8 + 1 + 1 + 1

// saveStates serializes vCPU states into the SMRAM save area using
// SMM-privilege writes (the memory round trip is part of the model:
// state really lives in SMRAM while the handler runs).
func (c *Controller) saveStates(states []isa.State) error {
	for i, s := range states {
		buf := make([]byte, 0, stateSize)
		for _, r := range s.Reg {
			buf = binary.LittleEndian.AppendUint64(buf, r)
		}
		buf = binary.LittleEndian.AppendUint64(buf, s.RIP)
		buf = append(buf, boolByte(s.ZF), boolByte(s.SF), byte(s.Priv))
		addr := c.base + uint64(i)*saveSlotSize
		if err := c.machine.Mem.Write(mem.PrivSMM, addr, buf); err != nil {
			return err
		}
	}
	return nil
}

// loadStates deserializes vCPU states from the SMRAM save area.
func (c *Controller) loadStates(n int) ([]isa.State, error) {
	out := make([]isa.State, n)
	buf := make([]byte, stateSize)
	for i := range out {
		addr := c.base + uint64(i)*saveSlotSize
		if err := c.machine.Mem.Read(mem.PrivSMM, addr, buf); err != nil {
			return nil, err
		}
		var s isa.State
		for r := 0; r < isa.NumRegs; r++ {
			s.Reg[r] = binary.LittleEndian.Uint64(buf[r*8:])
		}
		s.RIP = binary.LittleEndian.Uint64(buf[isa.NumRegs*8:])
		s.ZF = buf[isa.NumRegs*8+8] != 0
		s.SF = buf[isa.NumRegs*8+9] != 0
		s.Priv = mem.Priv(buf[isa.NumRegs*8+10])
		out[i] = s
	}
	return out, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Context is the platform interface an SMM handler sees while the
// machine is paused. All memory operations execute at SMM privilege.
type Context struct {
	ctrl *Controller
	Arg  uint64

	// charged accumulates the virtual time this SMI's handler charged.
	// Only the handler goroutine touches it (the machine is paused), so
	// it needs no lock.
	charged time.Duration
}

// Read copies physical memory at SMM privilege.
func (ctx *Context) Read(addr uint64, dst []byte) error {
	return ctx.ctrl.machine.Mem.Read(mem.PrivSMM, addr, dst)
}

// Write stores to physical memory at SMM privilege.
func (ctx *Context) Write(addr uint64, src []byte) error {
	return ctx.ctrl.machine.Mem.Write(mem.PrivSMM, addr, src)
}

// ReadU64 reads a little-endian 64-bit value at SMM privilege.
func (ctx *Context) ReadU64(addr uint64) (uint64, error) {
	return ctx.ctrl.machine.Mem.ReadU64(mem.PrivSMM, addr)
}

// WriteU64 writes a little-endian 64-bit value at SMM privilege.
func (ctx *Context) WriteU64(addr uint64, v uint64) error {
	return ctx.ctrl.machine.Mem.WriteU64(mem.PrivSMM, addr, v)
}

// VCPUStates returns the vCPU states saved in the SMRAM save area for
// the current SMI — what the handler inspects to decide whether any
// CPU was interrupted inside a region of interest.
func (ctx *Context) VCPUStates() ([]isa.State, error) {
	return ctx.ctrl.loadStates(ctx.ctrl.machine.NumVCPUs())
}

// NumVCPUs returns the machine's vCPU count.
func (ctx *Context) NumVCPUs() int { return ctx.ctrl.machine.NumVCPUs() }

// HeapBase returns the handler-persistent SMRAM heap base address.
func (ctx *Context) HeapBase() uint64 { return ctx.ctrl.HeapBase() }

// HeapSize returns the SMRAM heap size.
func (ctx *Context) HeapSize() uint64 { return ctx.ctrl.HeapSize() }

// Clock returns the virtual clock, which handlers advance for the
// work they model.
func (ctx *Context) Clock() *timing.Clock { return ctx.ctrl.clock }

// Model returns the calibrated cost model.
func (ctx *Context) Model() timing.Model { return ctx.ctrl.model }

// Charge advances the virtual clock by fixed + n bytes at rate and
// records the cost against the current SMI.
func (ctx *Context) Charge(fixed time.Duration, perByte timing.Rate, n int) {
	d := timing.Linear(fixed, perByte, n)
	ctx.charged += d
	ctx.ctrl.clock.Advance(d)
}

// Charged returns the virtual time charged so far during this SMI.
// Handlers use deltas of it to attribute per-stage costs: unlike clock
// spans, it is unaffected by concurrent clock advances from code
// running outside SMM (e.g. pipelined patch fetches).
func (ctx *Context) Charged() time.Duration { return ctx.charged }
