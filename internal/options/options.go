// Package options carries the one error vocabulary every KShot
// constructor speaks. The public API converged on functional options
// (kshot.New, kshot.NewPatchServer, kshot.NewRollout all take With*
// funcs), and each With* validates its argument eagerly: an
// out-of-range value or a conflicting pair of options surfaces as a
// typed *options.Error from the constructor, before any resource is
// allocated — never as a latent misconfiguration discovered mid-run.
//
// Callers branch with the standard helpers:
//
//	_, err := kshot.New(kshot.WithVCPUs(-1))
//	if errors.Is(err, kshot.ErrInvalidOption) { ... }
//	var oe *kshot.OptionError
//	if errors.As(err, &oe) { log.Printf("bad %s: %s", oe.Option, oe.Reason) }
package options

import (
	"errors"
	"fmt"
)

// ErrInvalid is the sentinel every option-validation failure unwraps
// to, regardless of which constructor rejected it.
var ErrInvalid = errors.New("options: invalid option")

// Error reports one rejected constructor option: which constructor,
// which With* func, and why. It matches ErrInvalid under errors.Is.
type Error struct {
	// Constructor is the public entry point that rejected the option
	// (e.g. "kshot.New", "kshot.NewRollout").
	Constructor string

	// Option is the With* function whose argument was rejected.
	Option string

	// Reason says what was wrong, in one clause.
	Reason string
}

// Errorf builds an *Error with a formatted reason.
func Errorf(constructor, option, format string, a ...any) *Error {
	return &Error{Constructor: constructor, Option: option, Reason: fmt.Sprintf(format, a...)}
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Constructor, e.Option, e.Reason)
}

// Is makes errors.Is(err, ErrInvalid) hold for every option error.
func (e *Error) Is(target error) bool { return target == ErrInvalid }
