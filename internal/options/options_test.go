package options

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorMatchesSentinel(t *testing.T) {
	err := Errorf("kshot.New", "WithVCPUs", "must be positive, got %d", -1)
	if !errors.Is(err, ErrInvalid) {
		t.Fatal("option error does not match ErrInvalid")
	}
	var oe *Error
	if !errors.As(err, &oe) {
		t.Fatal("errors.As failed")
	}
	if oe.Constructor != "kshot.New" || oe.Option != "WithVCPUs" {
		t.Fatalf("fields lost: %+v", oe)
	}
	if got, want := err.Error(), "kshot.New: WithVCPUs: must be positive, got -1"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

func TestErrorSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("boot: %w", Errorf("kshot.NewRollout", "WithGrowthFactor", "must be > 1"))
	if !errors.Is(err, ErrInvalid) {
		t.Fatal("wrapped option error does not match ErrInvalid")
	}
	var oe *Error
	if !errors.As(err, &oe) || oe.Option != "WithGrowthFactor" {
		t.Fatal("wrapped errors.As failed")
	}
}

func TestIsDoesNotMatchOtherErrors(t *testing.T) {
	if errors.Is(Errorf("c", "o", "r"), errors.New("other")) {
		t.Fatal("option error matched unrelated sentinel")
	}
}
