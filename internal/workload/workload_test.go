package workload

import (
	"testing"
	"time"

	"kshot/internal/kernel"
	"kshot/internal/machine"
)

func bootKernel(t *testing.T, vcpus int) *kernel.Kernel {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: vcpus})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRunForProducesThroughput(t *testing.T) {
	k := bootKernel(t, 2)
	for _, kind := range []Kind{CPU, Memory, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			d := New(k, kind)
			st, err := d.RunFor(50 * time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if st.Ops == 0 {
				t.Error("no operations completed")
			}
			if st.Errors != 0 {
				t.Errorf("%d workload errors", st.Errors)
			}
			if st.OpsPerSec() <= 0 {
				t.Error("zero throughput")
			}
		})
	}
}

func TestDoubleStartRejected(t *testing.T) {
	k := bootKernel(t, 1)
	d := New(k, CPU)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("second Start succeeded")
	}
	d.Stop()
	// Restart after stop is fine.
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	d.Stop()
}

func TestStopWithoutStart(t *testing.T) {
	k := bootKernel(t, 1)
	d := New(k, CPU)
	if s := d.Stop(); s.Ops != 0 {
		t.Error("phantom ops")
	}
}

func TestOverheadOfPauses(t *testing.T) {
	k := bootKernel(t, 2)
	d := New(k, Mixed)
	// Disturb with repeated machine pauses (the SMI effect); overhead
	// must be measurable but bounded.
	_, disturbed, ov, err := Overhead(d, 80*time.Millisecond, func() error {
		for i := 0; i < 50; i++ {
			k.M.Pause()
			time.Sleep(50 * time.Microsecond)
			k.M.Resume()
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if disturbed.Ops == 0 {
		t.Error("workload starved during disturbance")
	}
	if ov > 0.9 {
		t.Errorf("overhead %.2f implausibly high", ov)
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" || Mixed.String() != "mixed" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}
