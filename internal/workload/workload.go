// Package workload provides the Sysbench-like whole-system workload
// of §VI-C3: threads continuously issuing CPU-bound, memory-bound and
// checksum syscalls against the simulated kernel, with throughput
// accounting. The overhead experiment runs the workload with and
// without a live-patching storm and compares end-user-visible
// throughput, reproducing the paper's "under 3% overhead over 1,000
// live patches" measurement.
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kshot/internal/kernel"
	"kshot/internal/mem"
)

// Kind selects the workload mix.
type Kind int

// Workload kinds, mirroring Sysbench's test modes.
const (
	CPU Kind = iota + 1
	Memory
	Mixed
)

// String returns the mode name.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Stats summarizes a workload run.
type Stats struct {
	Ops     uint64
	Elapsed time.Duration
	Errors  uint64
}

// OpsPerSec returns the measured throughput.
func (s Stats) OpsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// Driver drives workload threads, one per vCPU.
type Driver struct {
	k    *kernel.Kernel
	kind Kind

	ops    atomic.Uint64
	errs   atomic.Uint64
	stopCh chan struct{}
	wg     sync.WaitGroup

	started time.Time
	running bool
}

// New creates a driver for the kernel using every vCPU.
func New(k *kernel.Kernel, kind Kind) *Driver {
	return &Driver{k: k, kind: kind}
}

// bufWords is the per-thread buffer size for memory operations.
const bufWords = 32

// Start launches the workload threads. Call Stop to end the run.
func (d *Driver) Start() error {
	if d.running {
		return fmt.Errorf("workload: already running")
	}
	// Seed per-thread buffers in the kernel heap.
	for v := 0; v < d.k.M.NumVCPUs(); v++ {
		base := d.threadBuf(v)
		for i := uint64(0); i < bufWords; i++ {
			if err := d.k.M.Mem.WriteU64(mem.PrivKernel, base+8*i, i*7+uint64(v)); err != nil {
				return fmt.Errorf("workload: seed: %w", err)
			}
		}
	}
	d.stopCh = make(chan struct{})
	d.started = time.Now()
	d.running = true
	for v := 0; v < d.k.M.NumVCPUs(); v++ {
		d.wg.Add(1)
		go d.run(v)
	}
	return nil
}

func (d *Driver) threadBuf(vcpu int) uint64 {
	return kernel.HeapBase + uint64(vcpu)*4096
}

func (d *Driver) run(vcpu int) {
	defer d.wg.Done()
	src := d.threadBuf(vcpu)
	dst := src + bufWords*8
	for i := uint64(0); ; i++ {
		select {
		case <-d.stopCh:
			return
		default:
		}
		var err error
		switch d.op(i) {
		case CPU:
			_, err = d.k.Call(vcpu, "sys_compute", i%1000, 3)
		case Memory:
			_, err = d.k.Call(vcpu, "sys_memmove", dst, src, bufWords)
		default:
			_, err = d.k.Call(vcpu, "sys_checksum", src, bufWords)
		}
		if err != nil {
			d.errs.Add(1)
			continue
		}
		d.ops.Add(1)
	}
}

// op picks the i-th operation kind for the mix.
func (d *Driver) op(i uint64) Kind {
	switch d.kind {
	case CPU:
		return CPU
	case Memory:
		return Memory
	default:
		switch i % 3 {
		case 0:
			return CPU
		case 1:
			return Memory
		default:
			return Mixed
		}
	}
}

// Stop ends the run and returns its stats.
func (d *Driver) Stop() Stats {
	if !d.running {
		return Stats{}
	}
	close(d.stopCh)
	d.wg.Wait()
	d.running = false
	s := Stats{
		Ops:     d.ops.Swap(0),
		Elapsed: time.Since(d.started),
		Errors:  d.errs.Swap(0),
	}
	return s
}

// RunFor runs the workload for the given wall-clock duration.
func (d *Driver) RunFor(dur time.Duration) (Stats, error) {
	if err := d.Start(); err != nil {
		return Stats{}, err
	}
	time.Sleep(dur)
	return d.Stop(), nil
}

// RunOps runs the workload until at least total operations have
// completed, then stops. Fixing the work instead of the wall-clock
// makes two runs comparable op-for-op — the dispatch-engine benchmarks
// use it to compare oracle and block throughput over identical
// instruction streams.
func (d *Driver) RunOps(total uint64) (Stats, error) {
	if err := d.Start(); err != nil {
		return Stats{}, err
	}
	for d.ops.Load() < total {
		time.Sleep(200 * time.Microsecond)
	}
	return d.Stop(), nil
}

// Overhead compares a baseline run against a run during which
// `disturb` executes (e.g. a 1,000-patch storm), returning the
// fractional throughput loss (0.03 = 3%).
func Overhead(d *Driver, dur time.Duration, disturb func() error) (baseline, disturbed Stats, overhead float64, err error) {
	baseline, err = d.RunFor(dur)
	if err != nil {
		return Stats{}, Stats{}, 0, err
	}
	if err = d.Start(); err != nil {
		return Stats{}, Stats{}, 0, err
	}
	start := time.Now()
	derr := disturb()
	if rem := dur - time.Since(start); rem > 0 {
		time.Sleep(rem)
	}
	disturbed = d.Stop()
	if derr != nil {
		return Stats{}, Stats{}, 0, derr
	}
	b, w := baseline.OpsPerSec(), disturbed.OpsPerSec()
	if b <= 0 {
		return Stats{}, Stats{}, 0, fmt.Errorf("workload: zero baseline throughput")
	}
	return baseline, disturbed, (b - w) / b, nil
}
