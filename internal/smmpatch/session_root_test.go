package smmpatch

import (
	"bytes"
	"math/rand"
	"testing"

	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/smm"
	"kshot/internal/timing"
)

// Derived-session mode (template-fork provisioning): the handler and
// the enclave share a 32-byte channel root and derive per-package
// session keys from (root, SMM nonce, enclave salt) instead of running
// a DH exchange. These tests drive the handler the way sgxprep's
// sealForSMM does in root mode.

var testRoot = bytes.Repeat([]byte{0x42}, 32)

// newRootRig is newRig with SessionRoot installed.
func newRootRig(t *testing.T) *rig {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("cve/gadget.asm", rigVuln)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "RIG", Files: map[string]string{"cve/gadget.asm": rigFixed}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, preImg, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, &timing.Clock{}, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{
		Reserved:      k.Res,
		KernelVersion: "4.4",
		Rand:          &detRand{r: rand.New(rand.NewSource(7))},
		SessionRoot:   testRoot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(ctrl); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Trigger(CmdKeyExchange, 0); err != nil {
		t.Fatal(err)
	}
	return &rig{
		m: m, k: k, ctrl: ctrl, h: h,
		preImg:  patch.ImagePair{Img: preImg, Unit: preUnit},
		postImg: patch.ImagePair{Img: postImg, Unit: postUnit},
	}
}

// sealRootPackage plays the enclave's root-mode role: read the
// published SMM nonce, draw a salt, derive the session key from the
// shared root, encrypt, and stage salt + ciphertext.
func (r *rig) sealRootPackage(t *testing.T, wire []byte) {
	t.Helper()
	nonce, err := ReadSMMPub(r.m.Mem, mem.PrivKernel, r.k.Res)
	if err != nil {
		t.Fatal(err)
	}
	if len(nonce) != 32 {
		t.Fatalf("published nonce is %d bytes, want 32", len(nonce))
	}
	salt := make([]byte, 32)
	rnd := &detRand{r: rand.New(rand.NewSource(11))}
	if _, err := rnd.Read(salt); err != nil {
		t.Fatal(err)
	}
	shared := kcrypto.DeriveKey(testRoot, nonce, salt)
	sess, err := kcrypto.NewSession(shared, &detRand{r: rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Encrypt(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, EnclavePubAddr(r.k.Res), salt); err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, PackageAddr(r.k.Res), ct); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRootAppliesPatch(t *testing.T) {
	r := newRootRig(t)
	if v, err := r.k.Call(0, "gadget", 0xdead); err != nil || v != 99 {
		t.Fatalf("pre-patch gadget = %d, %v", v, err)
	}
	r.sealRootPackage(t, r.wirePatch(t, "RIG-ROOT-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatalf("process: %v", err)
	}
	if v, err := r.k.Call(0, "gadget", 0xdead); err != nil || v != 0xdead+1 {
		t.Fatalf("post-patch gadget = %d, %v", v, err)
	}
	// Root mode charges the same virtual key-generation cost as DH
	// mode, so forked and cold-booted stage metrics stay identical.
	bd := r.h.LastBreakdown()
	if bd.KeyGen != timing.Calibrated().KeyGen {
		t.Errorf("root-mode KeyGen charge = %v, want %v", bd.KeyGen, timing.Calibrated().KeyGen)
	}
}

func TestSessionRootNonceRotates(t *testing.T) {
	r := newRootRig(t)
	n1, err := ReadSMMPub(r.m.Mem, mem.PrivKernel, r.k.Res)
	if err != nil {
		t.Fatal(err)
	}
	r.sealRootPackage(t, r.wirePatch(t, "RIG-ROOT-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadSMMPub(r.m.Mem, mem.PrivKernel, r.k.Res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(n1, n2) {
		t.Fatal("SMM nonce did not rotate across the SMI")
	}
}

func TestSessionRootReplayRejected(t *testing.T) {
	r := newRootRig(t)
	r.sealRootPackage(t, r.wirePatch(t, "RIG-ROOT-1"))

	// Capture the staged salt + ciphertext.
	lenBuf := make([]byte, 4)
	if err := r.m.Mem.Read(mem.PrivSMM, PackageAddr(r.k.Res), lenBuf); err != nil {
		t.Fatal(err)
	}
	n := int(uint32(lenBuf[0]) | uint32(lenBuf[1])<<8 | uint32(lenBuf[2])<<16 | uint32(lenBuf[3])<<24)
	captured := make([]byte, n)
	if err := r.m.Mem.Read(mem.PrivSMM, PackageAddr(r.k.Res)+4, captured); err != nil {
		t.Fatal(err)
	}
	capturedSalt := make([]byte, 36)
	if err := r.m.Mem.Read(mem.PrivSMM, EnclavePubAddr(r.k.Res), capturedSalt); err != nil {
		t.Fatal(err)
	}

	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	// Roll back so a successful replay would be visible.
	rbWire, err := patch.MarshalRollback("RIG-ROOT-1", "4.4")
	if err != nil {
		t.Fatal(err)
	}
	r.sealRootPackage(t, rbWire)
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}

	// Replay the captured salt + ciphertext: the nonce rotated with
	// the rekey, the derived key differs, and decryption fails.
	if err := r.m.Mem.Write(mem.PrivKernel, EnclavePubAddr(r.k.Res), capturedSalt); err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, PackageAddr(r.k.Res), captured); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err == nil {
		t.Fatal("replayed root-mode package accepted")
	}
	if v, _ := r.k.Call(0, "gadget", 0xdead); v != 99 {
		t.Error("replay had an effect")
	}
}

func TestSessionRootEmptySaltRejected(t *testing.T) {
	r := newRootRig(t)
	// Stage a package with a zero-length salt blob: session derivation
	// must fail rather than derive from an empty peer contribution.
	r.sealRootPackage(t, r.wirePatch(t, "RIG-ROOT-1"))
	if err := StageBlob(r.m.Mem, mem.PrivKernel, EnclavePubAddr(r.k.Res), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err == nil {
		t.Fatal("empty-salt package accepted")
	}
}

func TestSessionRootLengthValidated(t *testing.T) {
	if _, err := New(Config{Reserved: mustReserved(t), KernelVersion: "4.4", SessionRoot: []byte{1, 2, 3}}); err == nil {
		t.Fatal("3-byte session root accepted")
	}
}

// mustReserved maps a reserved window on a scratch Physical.
func mustReserved(t *testing.T) *mem.Reserved {
	t.Helper()
	m := mem.New(1 << 28)
	res, err := mem.MapReserved(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
