package smmpatch

import (
	"errors"
	"math/rand"
	"testing"

	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/smm"
	"kshot/internal/timing"
)

type detRand struct{ r *rand.Rand }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// rig is a minimal SMM patching test rig without enclave or server:
// the test plays both roles, producing packages directly.
type rig struct {
	m       *machine.Machine
	k       *kernel.Kernel
	ctrl    *smm.Controller
	h       *Handler
	preImg  patch.ImagePair
	postImg patch.ImagePair
}

const rigVuln = `
.global gadget_canary 8
.func gadget              ; (x) -> x+1 (vulnerable: also 0xdead -> 99)
    cmpi r1, 57005
    jnz .n
    movi r0, 99
    ret
.n:
    mov r0, r1
    addi r0, 1
    ret
.endfunc
`

const rigFixed = `
.global gadget_canary 8
.func gadget
    mov r0, r1
    addi r0, 1
    ret
.endfunc
`

func newRig(t *testing.T) *rig {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("cve/gadget.asm", rigVuln)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "RIG", Files: map[string]string{"cve/gadget.asm": rigFixed}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatal(err)
	}

	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, preImg, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, &timing.Clock{}, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{Reserved: k.Res, KernelVersion: "4.4", Rand: &detRand{r: rand.New(rand.NewSource(7))}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(ctrl); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Trigger(CmdKeyExchange, 0); err != nil {
		t.Fatal(err)
	}
	return &rig{
		m: m, k: k, ctrl: ctrl, h: h,
		preImg:  patch.ImagePair{Img: preImg, Unit: preUnit},
		postImg: patch.ImagePair{Img: postImg, Unit: postUnit},
	}
}

// sealPackage plays the enclave role: prepare, marshal, DH against the
// SMM public key, encrypt, stage.
func (r *rig) sealPackage(t *testing.T, wire []byte) {
	t.Helper()
	smmPub, err := ReadSMMPub(r.m.Mem, mem.PrivKernel, r.k.Res)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := kcrypto.GenerateKeyPair(&detRand{r: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := kp.SharedSecret(smmPub)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kcrypto.NewSession(shared, &detRand{r: rand.New(rand.NewSource(10))})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Encrypt(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, EnclavePubAddr(r.k.Res), kp.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, PackageAddr(r.k.Res), ct); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) preparedPatch(t *testing.T, id string) *patch.Prepared {
	t.Helper()
	bp, err := patch.Build(id, "4.4", r.preImg, r.postImg)
	if err != nil {
		t.Fatal(err)
	}
	memX, data := r.h.Cursors()
	p, err := patch.Prepare(bp, r.preImg.Img.Symbols, r.h.Placement(), memX, data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (r *rig) wirePatch(t *testing.T, id string) []byte {
	t.Helper()
	wire, err := patch.Marshal(r.preparedPatch(t, id), patch.OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestHandlerAppliesPatch(t *testing.T) {
	r := newRig(t)
	if v, err := r.k.Call(0, "gadget", 0xdead); err != nil || v != 99 {
		t.Fatalf("pre-patch gadget = %d, %v", v, err)
	}
	r.sealPackage(t, r.wirePatch(t, "RIG-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatalf("process: %v", err)
	}
	if v, err := r.k.Call(0, "gadget", 0xdead); err != nil || v != 0xdead+1 {
		t.Fatalf("post-patch gadget = %d, %v", v, err)
	}
	code, seq, digest, err := ReadStatus(r.m.Mem, mem.PrivKernel, r.k.Res)
	if err != nil || code != StatusPatched || seq == 0 || len(digest) != 32 {
		t.Errorf("status = %d seq %d, %v", code, seq, err)
	}
	bd := r.h.LastBreakdown()
	if bd.Decrypt <= 0 || bd.Verify <= 0 || bd.Apply <= 0 || bd.KeyGen <= 0 {
		t.Errorf("breakdown = %+v", bd)
	}
}

func TestReplayRejected(t *testing.T) {
	r := newRig(t)
	wire := r.wirePatch(t, "RIG-1")
	r.sealPackage(t, wire)

	// Capture the staged ciphertext the way a MITM on the shared
	// memory channel would (reading via SMM is the test's shortcut;
	// the attacker would capture it at write time).
	lenBuf := make([]byte, 4)
	if err := r.m.Mem.Read(mem.PrivSMM, PackageAddr(r.k.Res), lenBuf); err != nil {
		t.Fatal(err)
	}
	n := int(uint32(lenBuf[0]) | uint32(lenBuf[1])<<8 | uint32(lenBuf[2])<<16 | uint32(lenBuf[3])<<24)
	captured := make([]byte, n)
	if err := r.m.Mem.Read(mem.PrivSMM, PackageAddr(r.k.Res)+4, captured); err != nil {
		t.Fatal(err)
	}
	capturedPub := make([]byte, 260)
	if err := r.m.Mem.Read(mem.PrivSMM, EnclavePubAddr(r.k.Res), capturedPub); err != nil {
		t.Fatal(err)
	}

	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	// Roll the patch back so a successful replay would be visible.
	rbWire, err := patch.MarshalRollback("RIG-1", "4.4")
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, rbWire)
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}

	// Replay the captured ciphertext + public key. The SMM private
	// key has rotated, so the session key differs and decryption
	// yields garbage that fails validation.
	if err := r.m.Mem.Write(mem.PrivKernel, EnclavePubAddr(r.k.Res), capturedPub); err != nil {
		t.Fatal(err)
	}
	if err := StageBlob(r.m.Mem, mem.PrivKernel, PackageAddr(r.k.Res), captured); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err == nil {
		t.Fatal("replayed package accepted")
	}
	// And the kernel stayed unpatched.
	if v, _ := r.k.Call(0, "gadget", 0xdead); v != 99 {
		t.Error("replay had an effect")
	}
}

func TestTamperedPackageRejected(t *testing.T) {
	r := newRig(t)
	wire := r.wirePatch(t, "RIG-1")
	r.sealPackage(t, wire)
	// Kernel-privilege attacker flips a staged byte (mem_W is
	// kernel-writable by design).
	if err := r.m.Mem.Write(mem.PrivKernel, PackageAddr(r.k.Res)+40, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	err := r.ctrl.Trigger(CmdProcessPackage, 0)
	if err == nil {
		t.Fatal("tampered package accepted")
	}
	if v, _ := r.k.Call(0, "gadget", 0xdead); v != 99 {
		t.Error("tampered package had an effect")
	}
	code, _, _, _ := ReadStatus(r.m.Mem, mem.PrivKernel, r.k.Res)
	if code != StatusError {
		t.Errorf("status = %d, want StatusError", code)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	r := newRig(t)
	p := r.preparedPatch(t, "RIG-1")
	p.KernelVersion = "3.14"
	wire, err := patch.Marshal(p, patch.OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	err = r.ctrl.Trigger(CmdProcessPackage, 0)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew", err)
	}
}

func TestNoSessionKey(t *testing.T) {
	// Without a bootstrap key exchange, processing fails. Build the
	// rig manually to skip the keyex.
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	k, err := kernel.Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, nil, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{Reserved: k.Res, KernelVersion: "4.4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(ctrl); err != nil {
		t.Fatal(err)
	}
	if h.HasKey() {
		t.Error("key present before exchange")
	}
	err = ctrl.Trigger(CmdProcessPackage, 0)
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v, want ErrNoSession", err)
	}
}

func TestMisplacedPayloadRejected(t *testing.T) {
	r := newRig(t)
	p := r.preparedPatch(t, "RIG-1")
	// Point the payload outside mem_X: at the kernel text itself.
	ksym, _ := r.preImg.Img.Symbols.Lookup("sys_compute")
	p.Funcs[0].PAddr = ksym.Addr
	wire, err := patch.Marshal(p, patch.OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err == nil {
		t.Fatal("out-of-area payload accepted")
	}
	// Kernel text untouched.
	if v, err := r.k.Call(0, "sys_compute", 10, 4); err != nil || v != (10+4)*(10-4)+10 {
		t.Errorf("sys_compute corrupted: %d, %v", v, err)
	}
}

func TestRollbackOrderEnforced(t *testing.T) {
	r := newRig(t)
	r.sealPackage(t, r.wirePatch(t, "RIG-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	wire, err := patch.MarshalRollback("RIG-OTHER", "4.4")
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	err = r.ctrl.Trigger(CmdProcessPackage, 0)
	if !errors.Is(err, ErrRollbackOrder) {
		t.Fatalf("got %v, want ErrRollbackOrder", err)
	}
}

func TestRollbackVerifiedByFrameDiff(t *testing.T) {
	// Frame-granular rollback verification: a COW snapshot taken
	// before patching must show dirty kernel.text frames while the
	// patch is live and zero dirty frames after rollback — the whole
	// 4 MB segment checked, not just the patched function.
	r := newRig(t)
	text := r.m.Mem.Region(kernel.RegionText)
	if text == nil {
		t.Fatal("kernel.text not mapped")
	}
	snap := r.m.Mem.Snapshot()

	r.sealPackage(t, r.wirePatch(t, "RIG-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	dirty, err := r.m.Mem.DiffFramesIn(snap, text.Base, text.Size)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("applied patch left no dirty text frames")
	}

	wire, err := patch.MarshalRollback("RIG-1", "4.4")
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	dirty, err = r.m.Mem.DiffFramesIn(snap, text.Base, text.Size)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		addrs := make([]uint64, len(dirty))
		for i, idx := range dirty {
			addrs[i] = mem.FrameAddr(idx)
		}
		t.Fatalf("rollback left dirty text frames at %#x", addrs)
	}
	if v, err := r.k.Call(0, "gadget", 0xdead); err != nil || v != 99 {
		t.Fatalf("post-rollback gadget = %d, %v (want original vulnerable behavior)", v, err)
	}
}

func TestIntrospectRepairsTrampoline(t *testing.T) {
	r := newRig(t)
	r.sealPackage(t, r.wirePatch(t, "RIG-1"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	sym, _ := r.preImg.Img.Symbols.Lookup("gadget")
	// Rootkit overwrites the trampoline with a nop sled.
	nops := make([]byte, 5)
	for i := range nops {
		nops[i] = byte(isa.OpNop)
	}
	if err := r.m.Mem.Write(mem.PrivKernel, sym.Addr+5, nops); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdIntrospect, 0); err != nil {
		t.Fatal(err)
	}
	if r.h.TamperEvents() != 1 {
		t.Errorf("tamper events = %d", r.h.TamperEvents())
	}
	if v, _ := r.k.Call(0, "gadget", 0xdead); v != 0xdead+1 {
		t.Error("trampoline not repaired")
	}
	// Clean pass afterwards.
	if err := r.ctrl.Trigger(CmdIntrospect, 0); err != nil {
		t.Fatal(err)
	}
	if r.h.TamperEvents() != 1 {
		t.Error("clean pass counted as tampering")
	}
}

func TestHandlerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil reserved accepted")
	}
}

func TestPartialFailureUndone(t *testing.T) {
	// A package that mutates a good global, then faults on a second
	// write must leave the kernel exactly as it was: transactional
	// apply.
	r := newRig(t)
	gSym, ok := r.preImg.Img.Symbols.Lookup("gadget_canary")
	if !ok {
		t.Fatal("no gadget_canary")
	}
	if err := r.m.Mem.WriteU64(mem.PrivKernel, gSym.Addr, 0x1111); err != nil {
		t.Fatal(err)
	}

	p := r.preparedPatch(t, "RIG-PARTIAL")
	p.Globals = []patch.PreparedGlobal{
		{Name: "gadget_canary", Addr: gSym.Addr, Init: []byte{0x22, 0, 0, 0, 0, 0, 0, 0}},
		// Unmapped address: the write faults after the first global
		// was already mutated.
		{Name: "bogus", Addr: 0x1, Init: []byte{1}},
	}
	wire, err := patch.Marshal(p, patch.OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err == nil {
		t.Fatal("faulting package accepted")
	}
	// First global restored, function behaviour unchanged, journal
	// empty.
	v, err := r.m.Mem.ReadU64(mem.PrivKernel, gSym.Addr)
	if err != nil || v != 0x1111 {
		t.Errorf("global not restored: %#x, %v", v, err)
	}
	if out, _ := r.k.Call(0, "gadget", 0xdead); out != 99 {
		t.Error("partial apply changed function behaviour")
	}
	if got := r.h.Applied(); len(got) != 0 {
		t.Errorf("journal = %v after failed apply", got)
	}
	// The handler remains usable: a clean patch goes through.
	r.sealPackage(t, r.wirePatch(t, "RIG-CLEAN"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatalf("clean patch after failure: %v", err)
	}
}
