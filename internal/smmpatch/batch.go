package smmpatch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/patch"
	"kshot/internal/smm"
)

// Batched SMI delivery (multi-package staging, §V-C extended): the
// helper stages N independently sealed patch packages into mem_W as a
// directory, then raises a single CmdProcessBatch SMI. The handler
// consumes one SMM DH key pair for the whole batch — each member is
// sealed by the enclave with its own ephemeral key against the same
// published SMM public key — decrypts, verifies, and applies every
// member on the paused machine, and publishes per-member outcome codes
// in mem_RW. One world switch and one key generation are paid for N
// patches instead of N world switches, which is where the pipelined
// ApplyAll gets its OS-pause reduction.
//
// mem_W directory layout at offPackage:
//
//	magic "KSBT" (4) | u32 member count | members...
//	member: u32 pub len | enclave pub | u32 ct len | ciphertext
//
// mem_RW results mailbox at offBatchResults:
//
//	u32 member count | per-member u32 status code
//
// A member failure (bad integrity, duplicate, active target) never
// aborts the batch: the member's code records the outcome and the
// remaining members still apply. Only structural failures — a corrupt
// directory, a missing session key — fail the whole SMI.

// batchMagic marks a mem_W batch staging directory.
const batchMagic = "KSBT"

// MaxBatchMembers bounds a staging directory; the results mailbox and
// SMRAM bookkeeping are sized for it.
const MaxBatchMembers = 64

// ErrBadBatch is returned when the mem_W staging directory is
// structurally invalid.
var ErrBadBatch = errors.New("smmpatch: malformed batch staging directory")

// BatchMember is one sealed package in a staging directory.
type BatchMember struct {
	// EnclavePub is the enclave's ephemeral DH public key this member
	// was sealed with.
	EnclavePub []byte
	// Ciphertext is the sealed patch package.
	Ciphertext []byte
}

// handleBatch processes a multi-package staging directory under a
// single world switch.
func (h *Handler) handleBatch(ctx *smm.Context, _ uint64) error {
	h.lastBatch = nil
	if h.key == nil {
		return h.fail(ctx, ErrNoSession)
	}
	// One channel credential serves the whole batch and is consumed by
	// it (replay of any member dies with the rekey below).
	key := h.key
	h.key = nil
	defer func() {
		_ = h.rekey(ctx)
	}()

	members, err := h.readBatchDir(ctx)
	if err != nil {
		return h.fail(ctx, err)
	}

	// The single per-SMI key generation is amortized across members so
	// per-patch stage reports still sum to the true SMI cost.
	keyGenShare := ctx.Model().KeyGen / time.Duration(len(members))

	codes := make([]uint32, len(members))
	bds := make([]Breakdown, len(members))
	applied := 0
	for i, m := range members {
		// Injected mid-batch abort: the handler stops between members
		// (a watchdog or internal failure cutting the SMI short). The
		// members already applied stay applied — each apply is
		// individually transactional — and the remainder report
		// errors through the normal mailbox so the helper can retry
		// them per-patch.
		if h.fi.Fire(faultinject.SMMBatchAbort) {
			for j := i; j < len(members); j++ {
				codes[j] = StatusError
			}
			break
		}
		bd := Breakdown{KeyGen: keyGenShare}
		codes[i] = h.processBatchMember(ctx, key, m, &bd)
		if codes[i] == StatusPatched {
			applied++
			h.observeOutcome(h.lastJournalID(), bd, h.journalPayloadBytes(), obs.CtrApplied)
		}
		bds[i] = bd
	}
	if applied > 0 {
		if err := h.rebaselineText(ctx); err != nil {
			return h.fail(ctx, err)
		}
	}
	h.lastBatch = bds
	if err := h.writeBatchResults(ctx, codes); err != nil {
		return h.fail(ctx, err)
	}
	op := fmt.Sprintf("batch:%d/%d", applied, len(members))
	return h.status(ctx, StatusBatchDone, attestation(op, h.journal))
}

// processBatchMember runs one member through session derivation,
// decrypt/verify, and the transactional apply, mapping the outcome to
// a mailbox status code. Member-level errors are deliberately not
// propagated: the batch continues.
func (h *Handler) processBatchMember(ctx *smm.Context, key *chanKey, m BatchMember, bd *Breakdown) uint32 {
	session, err := h.sessionFor(key, m.EnclavePub)
	if err != nil {
		return StatusError
	}
	pkg, err := h.decryptAndVerify(ctx, session, m.Ciphertext, bd)
	if err != nil {
		return StatusError
	}
	// Batched delivery is patch-only; rollbacks stay LIFO and go
	// through the single-package path.
	if pkg.Op != patch.OpPatch {
		return StatusError
	}
	if err := h.applyPatchCore(ctx, pkg, bd); err != nil {
		if errors.Is(err, ErrTargetActive) {
			return StatusTargetActive
		}
		return StatusError
	}
	return StatusPatched
}

// readBatchDir parses the mem_W staging directory with SMM-privilege
// reads, bounds-checking every length against the region.
func (h *Handler) readBatchDir(ctx *smm.Context) ([]BatchMember, error) {
	base := h.res.WBase() + offPackage
	limit := h.res.WBase() + h.res.W.Size
	return parseBatchDir(ctx.Read, base, limit)
}

// parseBatchDir walks a KSBT staging directory through the given
// privileged reader, bounds-checking every length against [base,
// limit). The directory came from the untrusted helper, so a
// structurally invalid one must fail with ErrBadBatch and can never
// read outside the window or panic — the property FuzzKSBTParse
// exercises.
func parseBatchDir(read func(addr uint64, dst []byte) error, base, limit uint64) ([]BatchMember, error) {
	var hdr [8]byte
	if base+8 > limit {
		return nil, fmt.Errorf("%w: window too small", ErrBadBatch)
	}
	if err := read(base, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadBatch, err)
	}
	if string(hdr[:4]) != batchMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadBatch, hdr[:4])
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	if count <= 0 || count > MaxBatchMembers {
		return nil, fmt.Errorf("%w: member count %d", ErrBadBatch, count)
	}
	off := base + 8
	readBlob := func() ([]byte, error) {
		var lenBuf [4]byte
		if off+4 > limit || off+4 < off {
			return nil, fmt.Errorf("%w: truncated directory", ErrBadBatch)
		}
		if err := read(off, lenBuf[:]); err != nil {
			return nil, err
		}
		n := uint64(binary.LittleEndian.Uint32(lenBuf[:]))
		if n == 0 || off+4+n < off || off+4+n > limit {
			return nil, fmt.Errorf("%w: blob length %d at %#x", ErrBadBatch, n, off)
		}
		out := make([]byte, n)
		if err := read(off+4, out); err != nil {
			return nil, err
		}
		off += 4 + n
		return out, nil
	}
	members := make([]BatchMember, 0, count)
	for i := 0; i < count; i++ {
		pub, err := readBlob()
		if err != nil {
			return nil, err
		}
		ct, err := readBlob()
		if err != nil {
			return nil, err
		}
		members = append(members, BatchMember{EnclavePub: pub, Ciphertext: ct})
	}
	return members, nil
}

// writeBatchResults publishes per-member outcome codes in mem_RW.
func (h *Handler) writeBatchResults(ctx *smm.Context, codes []uint32) error {
	buf := make([]byte, 4+4*len(codes))
	binary.LittleEndian.PutUint32(buf, uint32(len(codes)))
	for i, c := range codes {
		binary.LittleEndian.PutUint32(buf[4+4*i:], c)
	}
	return ctx.Write(h.res.RWBase()+offBatchResults, buf)
}

// StageBatch writes the multi-package staging directory into mem_W at
// the given (kernel/user) privilege — the untrusted helper's side of
// batched delivery. mem_W is write-only from that privilege, so the
// helper deposits the directory blind, exactly like single packages.
func StageBatch(m *mem.Physical, priv mem.Priv, res *mem.Reserved, members []BatchMember) error {
	if len(members) == 0 || len(members) > MaxBatchMembers {
		return fmt.Errorf("stage batch: %d members (max %d)", len(members), MaxBatchMembers)
	}
	buf := encodeBatchDir(members)
	if uint64(len(buf)) > res.W.Size {
		return fmt.Errorf("stage batch: directory %d bytes exceeds mem_W (%d)", len(buf), res.W.Size)
	}
	return m.Write(priv, res.WBase()+offPackage, buf)
}

// encodeBatchDir serializes members into the KSBT wire layout —
// the exact inverse of parseBatchDir over a flat window.
func encodeBatchDir(members []BatchMember) []byte {
	size := uint64(8)
	for _, bm := range members {
		size += 8 + uint64(len(bm.EnclavePub)) + uint64(len(bm.Ciphertext))
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(members)))
	for _, bm := range members {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bm.EnclavePub)))
		buf = append(buf, bm.EnclavePub...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bm.Ciphertext)))
		buf = append(buf, bm.Ciphertext...)
	}
	return buf
}

// ReadBatchResults reads the per-member outcome codes the handler
// published after a CmdProcessBatch SMI.
func ReadBatchResults(m *mem.Physical, priv mem.Priv, res *mem.Reserved) ([]uint32, error) {
	var cntBuf [4]byte
	if err := m.Read(priv, res.RWBase()+offBatchResults, cntBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(cntBuf[:]))
	if n <= 0 || n > MaxBatchMembers {
		return nil, fmt.Errorf("batch results: bad member count %d", n)
	}
	buf := make([]byte, 4*n)
	if err := m.Read(priv, res.RWBase()+offBatchResults+4, buf); err != nil {
		return nil, err
	}
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return codes, nil
}
