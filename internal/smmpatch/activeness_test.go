package smmpatch

import (
	"errors"
	"testing"
	"time"

	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/smm"
	"kshot/internal/timing"
)

// spinSrc defines a patch target that parks inside itself until
// released via a global, letting the test hold a vCPU inside the
// function deterministically.
const spinVuln = `
.global gadget_entered 8
.global gadget_release 8
.func gadget              ; (x) -> x+1, waits for release first
    movi r2, 1
    storeg gadget_entered, r2
.wait:
    loadg r2, gadget_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 1
    ret
.endfunc
.func gadget_caller       ; calls gadget so its frame holds a return address
    push r1
    call gadget
    pop r1
    ret
.endfunc
`

const spinFixed = `
.global gadget_entered 8
.global gadget_release 8
.func gadget              ; patched: -> x+2
    movi r2, 1
    storeg gadget_entered, r2
.wait:
    loadg r2, gadget_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 2
    ret
.endfunc
.func gadget_caller       ; patched: normalizes the error code path
    push r1
    call gadget
    pop r1
    addi r0, 0
    ret
.endfunc
`

// activeRig builds a rig with the activeness check enabled.
func newActiveRig(t *testing.T) *rig {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("cve/spin.asm", spinVuln)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "SPIN", Files: map[string]string{"cve/spin.asm": spinFixed}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, preImg, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, &timing.Clock{}, timing.Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{
		Reserved:        k.Res,
		KernelVersion:   "4.4",
		CheckActiveness: true,
		TextBase:        kernel.TextBase,
		TextSize:        kernel.TextRegionSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(ctrl); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Trigger(CmdKeyExchange, 0); err != nil {
		t.Fatal(err)
	}
	return &rig{
		m: m, k: k, ctrl: ctrl, h: h,
		preImg:  patch.ImagePair{Img: preImg, Unit: preUnit},
		postImg: patch.ImagePair{Img: postImg, Unit: postUnit},
	}
}

// park launches fn on vCPU 0 and blocks until it has signalled entry.
func park(t *testing.T, r *rig, fn string) chan error {
	t.Helper()
	if err := r.k.WriteGlobal("gadget_release", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.k.WriteGlobal("gadget_entered", 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.k.Call(0, fn, 41)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := r.k.ReadGlobal("gadget_entered")
		if err != nil {
			t.Fatal(err)
		}
		if v == 1 {
			return done
		}
		if time.Now().After(deadline) {
			t.Fatal("vCPU never entered gadget")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// release lets the parked call finish.
func release(t *testing.T, r *rig, done chan error) {
	t.Helper()
	if err := r.k.WriteGlobal("gadget_release", 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked call: %v", err)
	}
}

func TestActivenessBlocksLiveTarget(t *testing.T) {
	r := newActiveRig(t)
	done := park(t, r, "gadget")

	// Patch attempt while a vCPU sits inside gadget: refused, nothing
	// modified.
	r.sealPackage(t, r.wirePatch(t, "SPIN"))
	err := r.ctrl.Trigger(CmdProcessPackage, 0)
	if !errors.Is(err, ErrTargetActive) {
		t.Fatalf("got %v, want ErrTargetActive", err)
	}
	if got := r.h.Applied(); len(got) != 0 {
		t.Errorf("journal not empty after refused patch: %v", got)
	}

	release(t, r, done)

	// Retry on a quiescent machine: accepted (fresh key exchange not
	// needed — the handler rekeyed on its way out).
	r.sealPackage(t, r.wirePatch(t, "SPIN"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatalf("retry: %v", err)
	}
	// Patched behaviour visible.
	if err := r.k.WriteGlobal("gadget_release", 1); err != nil {
		t.Fatal(err)
	}
	v, err := r.k.Call(0, "gadget", 41)
	if err != nil || v != 43 {
		t.Errorf("patched gadget = %d, %v; want 43", v, err)
	}
}

func TestActivenessCatchesReturnAddress(t *testing.T) {
	r := newActiveRig(t)
	// Park inside gadget via gadget_caller: the caller's stack frame
	// holds a return address into gadget_caller and RIP is inside
	// gadget. Patch only gadget_caller: RIP check misses it, the stack
	// scan must catch the return address.
	done := park(t, r, "gadget_caller")

	bp, err := patch.Build("SPIN", "4.4", r.preImg, r.postImg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only the gadget_caller function patch.
	var only []patch.FuncPatch
	for _, f := range bp.Funcs {
		if f.Name == "gadget_caller" {
			only = append(only, f)
		}
	}
	if len(only) == 0 {
		t.Fatal("fix does not touch gadget_caller")
	}
	bp.Funcs = only
	bp.Globals = nil
	memX, data := r.h.Cursors()
	p, err := patch.Prepare(bp, r.preImg.Img.Symbols, r.h.Placement(), memX, data)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := patch.Marshal(p, patch.OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, wire)
	err = r.ctrl.Trigger(CmdProcessPackage, 0)
	if !errors.Is(err, ErrTargetActive) {
		t.Fatalf("got %v, want ErrTargetActive (stack scan)", err)
	}
	release(t, r, done)
}

func TestActivenessIdleMachinePasses(t *testing.T) {
	r := newActiveRig(t)
	if err := r.k.WriteGlobal("gadget_release", 1); err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, r.wirePatch(t, "SPIN"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatalf("idle-machine patch refused: %v", err)
	}
}

func TestWatchTextDetectsForeignModification(t *testing.T) {
	r := newActiveRig(t)
	if err := r.ctrl.Trigger(CmdWatchText, 0); err != nil {
		t.Fatal(err)
	}
	// Clean sweep first.
	if err := r.ctrl.Trigger(CmdIntrospect, 0); err != nil {
		t.Fatal(err)
	}
	if r.h.TamperEvents() != 0 {
		t.Fatal("false positive before tampering")
	}

	// KShot's own patch does not trip the watch (baseline refreshes).
	if err := r.k.WriteGlobal("gadget_release", 1); err != nil {
		t.Fatal(err)
	}
	r.sealPackage(t, r.wirePatch(t, "SPIN"))
	if err := r.ctrl.Trigger(CmdProcessPackage, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdIntrospect, 0); err != nil {
		t.Fatal(err)
	}
	if r.h.TamperEvents() != 0 {
		t.Error("own patch flagged as tampering")
	}

	// A rootkit patches an unrelated kernel function (no KShot patch
	// covers it): the text watch must notice.
	sym, ok := r.preImg.Img.Symbols.Lookup("sys_compute")
	if !ok {
		t.Fatal("no sys_compute")
	}
	if err := r.m.Mem.Write(mem.PrivKernel, sym.Addr+6, []byte{byte(isa.OpNop)}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Trigger(CmdIntrospect, 0); err != nil {
		t.Fatal(err)
	}
	if r.h.TamperEvents() != 1 {
		t.Errorf("foreign text modification missed (events=%d)", r.h.TamperEvents())
	}
}

func TestWatchTextUnconfigured(t *testing.T) {
	r := newRig(t) // rig without TextBase/TextSize
	if err := r.ctrl.Trigger(CmdWatchText, 0); err == nil {
		t.Error("unconfigured text watch accepted")
	}
}
