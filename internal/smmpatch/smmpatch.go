// Package smmpatch implements KShot's SMM-resident live patching
// handler (§V-C, §V-D): per-patch Diffie-Hellman key generation, patch
// package fetch from mem_W, decryption, integrity verification,
// global-variable edits, payload installation into mem_X, trampoline
// insertion, rollback from an SMRAM-held journal, and introspection
// that detects (and repairs) malicious patch reversion.
//
// The handler runs only inside SMIs, on a paused machine, with
// SMM-privilege memory access. Its persistent state — session keys,
// the patch journal, allocation cursors — lives logically in SMRAM:
// nothing the kernel can address. (The paper stores rollback originals
// in mem_W; we keep them in SMRAM instead and note the deviation,
// since mem_W is kernel-writable and a compromised kernel could
// otherwise corrupt rollback state.)
package smmpatch

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/patch"
	"kshot/internal/smm"
)

// SMI command codes (the APM-port bytes the helper writes to enter the
// handler).
const (
	// CmdKeyExchange makes SMM generate a fresh DH key pair and
	// publish its public key in mem_RW.
	CmdKeyExchange smm.Command = 0x4B
	// CmdProcessPackage makes SMM fetch, decrypt, verify, and execute
	// the package staged in mem_W (patch or rollback).
	CmdProcessPackage smm.Command = 0x50
	// CmdProcessBatch makes SMM process a multi-package staging
	// directory in mem_W: N independently sealed patch packages are
	// decrypted, verified, and applied under a single world switch,
	// with per-member outcomes published in mem_RW.
	CmdProcessBatch smm.Command = 0x42
	// CmdIntrospect makes SMM verify all applied patches are intact,
	// repairing any tampering it finds (§V-D).
	CmdIntrospect smm.Command = 0x49
	// CmdWatchText makes SMM baseline a masked hash of the kernel text
	// segment; subsequent introspection flags any modification KShot
	// did not make itself (the HyperCheck-style kernel protection the
	// paper builds on).
	CmdWatchText smm.Command = 0x57
)

// mem_RW layout: the key exchange and status mailbox.
const (
	// offEnclavePub: u32 length + enclave public key (helper-written).
	offEnclavePub = 0x0
	// offSMMPub: u32 length + SMM public key (SMM-written).
	offSMMPub = 0x4000
	// offStatus: u32 status + u64 SMI sequence + 32-byte attestation
	// digest (SMM-written; read by the helper/remote server for the
	// DoS-detection handshake of §V-D).
	offStatus = 0x8000
	// offBatchResults: u32 member count + per-member u32 status codes
	// (SMM-written after CmdProcessBatch; read by the helper to learn
	// which batch members were applied, refused, or rejected).
	offBatchResults = 0x8100
)

// Status codes published at offStatus.
const (
	StatusIdle uint32 = iota
	StatusKeyReady
	StatusPatched
	StatusRolledBack
	StatusError
	StatusTampered
	// StatusTargetActive is a per-member batch outcome: the activeness
	// check refused the patch because its target was live on a vCPU.
	// Unlike StatusError it is retryable — nothing about the package
	// was wrong, the machine just paused at an inconvenient moment.
	StatusTargetActive
	// StatusBatchDone is the mailbox summary code after a batch SMI;
	// per-member outcomes are published separately at offBatchResults.
	StatusBatchDone
)

// mem_W layout: u32 length + ciphertext staged by the helper.
const offPackage = 0x0

// Errors surfaced to the trusted caller.
var (
	ErrNoSession = errors.New("smmpatch: no session key (run key exchange first)")
	// ErrTargetActive is returned when the conservative activeness
	// check finds a vCPU executing inside (or returning into) a
	// function the patch would replace. The operator retries; this is
	// the "consistency model / safely choose patch tasks" direction
	// the paper's §VIII leaves as future work.
	ErrTargetActive   = errors.New("smmpatch: target function active on a vCPU")
	ErrVersionSkew    = errors.New("smmpatch: package built for a different kernel version")
	ErrBadIntegrity   = errors.New("smmpatch: payload integrity check failed")
	ErrNothingApplied = errors.New("smmpatch: no patch to roll back")
	ErrDuplicate      = errors.New("smmpatch: patch already applied")
	ErrRollbackOrder  = errors.New("smmpatch: only the most recent patch can be rolled back")
)

// Breakdown records the virtual time spent per stage of the last
// package-processing SMI — the rows of Table III.
type Breakdown struct {
	KeyGen  time.Duration
	Decrypt time.Duration
	Verify  time.Duration
	Apply   time.Duration
}

// appliedFunc journals one installed function patch.
type appliedFunc struct {
	name         string
	trampolineAt uint64
	original     []byte // bytes the trampoline overwrote (nil for new funcs)
	trampoline   []byte
	paddr        uint64
	payloadHash  [kcrypto.DigestSize]byte
	payloadLen   int
}

// appliedGlobal journals one data edit for rollback.
type appliedGlobal struct {
	addr     uint64
	original []byte
	applied  []byte
}

// appliedPatch is one journal entry.
type appliedPatch struct {
	id       string
	funcs    []appliedFunc
	globals  []appliedGlobal
	memXPrev uint64 // allocation cursors before this patch
	dataPrev uint64
}

// Handler is the SMM patching module. Construct with New, register on
// a controller with Register, then drive it by raising SMIs.
type Handler struct {
	res           *mem.Reserved
	kernelVersion string
	place         patch.Placement
	rng           io.Reader
	checkActive   bool
	textBase      uint64
	textSize      uint64
	attKey        []byte
	sessionRoot   []byte
	fi            *faultinject.Set
	obs           *obs.Hooks

	// SMRAM-resident state.
	key      *chanKey
	journal  []appliedPatch
	memXUsed uint64
	dataUsed uint64
	seq      uint64

	lastBreakdown Breakdown
	lastBatch     []Breakdown
	tamperEvents  int

	textBaseline    [kcrypto.DigestSize]byte
	textBaselineSet bool
}

// Config for the handler, registered at provisioning time (the paper's
// "configurations of reserved memory ... saved in SMM code in advance
// via the patch server").
type Config struct {
	Reserved      *mem.Reserved
	KernelVersion string

	// Rand is the entropy source for DH key generation (crypto/rand
	// when nil; deterministic in tests).
	Rand io.Reader

	// CheckActiveness enables the conservative pre-patch activeness
	// check: the handler refuses to patch a function while any paused
	// vCPU's RIP lies inside it or any live stack word points into it
	// (kpatch-style stack checking, done from SMM).
	CheckActiveness bool

	// TextBase/TextSize describe the kernel text segment for the
	// CmdWatchText integrity baseline. Zero disables text watching.
	TextBase uint64
	TextSize uint64

	// AttestationKey authenticates the status mailbox: every status
	// record carries HMAC-SHA256(key, code||seq||digest). The mailbox
	// lives in kernel-writable mem_RW, so without the MAC a
	// kernel-level attacker could forge a "patched" confirmation
	// toward the remote server to mask a suppressed deployment. The
	// key is provisioned into SMRAM before lock (and shared with the
	// server out of band). Nil disables authentication.
	AttestationKey []byte

	// SessionRoot, when 32 bytes, switches the SGX↔SMM channel into
	// derived-session mode: instead of an ephemeral DH pair, the
	// handler publishes a fresh random 32-byte nonce in mem_RW and the
	// per-package transport key is HMAC(root, nonce, enclaveSalt). The
	// root is provisioned into SMRAM before lock (template forking:
	// the fork's core provisions the same root into the enclave), so
	// the publish/consume anti-replay discipline — one credential per
	// package, regenerated before leaving SMM — is unchanged, while
	// the per-package modular exponentiations disappear. Nil keeps the
	// paper's DH exchange.
	SessionRoot []byte
}

// chanKey is the handler's published, unconsumed channel credential:
// an ephemeral DH key pair in the paper's cold-boot mode, or a fresh
// ratchet nonce in derived-session (template fork) mode. Exactly one
// field is set; either way the credential is consumed by the next
// package/batch SMI and regenerated on the way out.
type chanKey struct {
	kp    *kcrypto.KeyPair
	nonce []byte
}

// New builds the handler.
func New(cfg Config) (*Handler, error) {
	if cfg.Reserved == nil {
		return nil, errors.New("smmpatch: nil reserved region")
	}
	if len(cfg.SessionRoot) != 0 && len(cfg.SessionRoot) != 32 {
		return nil, fmt.Errorf("smmpatch: session root must be 32 bytes, got %d", len(cfg.SessionRoot))
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.Reader
	}
	return &Handler{
		res:           cfg.Reserved,
		kernelVersion: cfg.KernelVersion,
		rng:           rng,
		checkActive:   cfg.CheckActiveness,
		textBase:      cfg.TextBase,
		textSize:      cfg.TextSize,
		attKey:        append([]byte(nil), cfg.AttestationKey...),
		sessionRoot:   append([]byte(nil), cfg.SessionRoot...),
		place: patch.Placement{
			MemXBase:      cfg.Reserved.XBase(),
			MemXSize:      cfg.Reserved.X.Size,
			DataAllocBase: cfg.Reserved.RWBase() + 0xC000,
			DataAllocSize: 0x4000,
		},
	}, nil
}

// Placement returns the placement the enclave must prepare against.
func (h *Handler) Placement() patch.Placement { return h.place }

// Cursors returns the current mem_X and data allocation cursors, which
// the enclave needs to prepare the next patch.
func (h *Handler) Cursors() (memX, data uint64) { return h.memXUsed, h.dataUsed }

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted between batch members — the chaos suite's
// stand-in for a firmware failure cutting an SMI short.
func (h *Handler) SetFaultInjector(fi *faultinject.Set) { h.fi = fi }

// SetObserver installs (or, with nil, removes) the observability hooks
// recording per-patch verify/apply spans and applied/rolled-back
// counters from inside the SMI.
func (h *Handler) SetObserver(ob *obs.Hooks) { h.obs = ob }

// observeOutcome emits the in-SMM spans for one processed package:
// T_verify covers the session work done before bytes change (keygen +
// decrypt + verify), T_apply the mutation itself.
func (h *Handler) observeOutcome(id string, bd Breakdown, bytes int, counter string) {
	ob := h.obs
	if ob == nil {
		return
	}
	ob.Span(obs.PhaseVerify, id, -1, bd.KeyGen+bd.Decrypt+bd.Verify, 0)
	ob.Span(obs.PhaseApply, id, -1, bd.Apply, bytes)
	ob.Count(counter, 1)
}

// lastJournalID returns the ID of the newest journal entry — the patch
// a batch member just landed.
func (h *Handler) lastJournalID() string {
	if len(h.journal) == 0 {
		return ""
	}
	return h.journal[len(h.journal)-1].id
}

// journalPayloadBytes sums the payload sizes of the newest journal
// entry — the applied patch a batch member just landed.
func (h *Handler) journalPayloadBytes() int {
	if len(h.journal) == 0 {
		return 0
	}
	n := 0
	for _, f := range h.journal[len(h.journal)-1].funcs {
		n += f.payloadLen
	}
	return n
}

// Applied returns the IDs of currently applied patches, oldest first.
func (h *Handler) Applied() []string {
	out := make([]string, len(h.journal))
	for i, j := range h.journal {
		out[i] = j.id
	}
	return out
}

// TamperEvents returns how many introspection runs found (and
// repaired) tampering.
func (h *Handler) TamperEvents() int { return h.tamperEvents }

// LastBreakdown returns the per-stage virtual times of the most recent
// package-processing SMI.
func (h *Handler) LastBreakdown() Breakdown { return h.lastBreakdown }

// BatchBreakdowns returns the per-member stage times of the most
// recent batch SMI, in staging order. Fixed per-SMI costs (key
// generation) are amortized evenly across the members so the
// per-patch reports still sum to the true SMI cost.
func (h *Handler) BatchBreakdowns() []Breakdown {
	return append([]Breakdown(nil), h.lastBatch...)
}

// Register installs the handler's SMI commands on the controller.
// Must run before the controller is locked.
func (h *Handler) Register(ctrl *smm.Controller) error {
	if err := ctrl.Register(CmdKeyExchange, h.handleKeyExchange); err != nil {
		return err
	}
	if err := ctrl.Register(CmdProcessPackage, h.handlePackage); err != nil {
		return err
	}
	if err := ctrl.Register(CmdProcessBatch, h.handleBatch); err != nil {
		return err
	}
	if err := ctrl.Register(CmdIntrospect, h.handleIntrospect); err != nil {
		return err
	}
	return ctrl.Register(CmdWatchText, h.handleWatchText)
}

// handleKeyExchange generates a fresh DH key pair and publishes the
// public key in mem_RW. It bootstraps the channel; afterwards every
// package-processing SMI rekeys on its way out.
func (h *Handler) handleKeyExchange(ctx *smm.Context, _ uint64) error {
	if err := h.rekey(ctx); err != nil {
		return h.fail(ctx, err)
	}
	return h.status(ctx, StatusKeyReady, nil)
}

// HasKey reports whether a published, unconsumed channel credential
// (DH key or ratchet nonce) is available.
func (h *Handler) HasKey() bool { return h.key != nil }

// rekey generates and publishes a fresh channel credential
// (anti-replay: it changes before every patch). In DH mode that is an
// ephemeral key pair; in derived-session mode a fresh ratchet nonce.
// Both modes charge the model's key-generation cost: the virtual time
// models the paper's protocol step, so forked (derived-session) and
// cold-booted (DH) targets report bit-identical stage metrics even
// though the host-side arithmetic differs enormously.
func (h *Handler) rekey(ctx *smm.Context) error {
	ctx.Charge(ctx.Model().KeyGen, 0, 0)
	if len(h.sessionRoot) != 0 {
		nonce := make([]byte, 32)
		if _, err := io.ReadFull(h.rng, nonce); err != nil {
			return fmt.Errorf("smmpatch: nonce: %w", err)
		}
		if err := h.writeBlob(ctx, h.res.RWBase()+offSMMPub, nonce); err != nil {
			return err
		}
		h.key = &chanKey{nonce: nonce}
		return nil
	}
	kp, err := kcrypto.GenerateKeyPair(h.rng)
	if err != nil {
		return fmt.Errorf("smmpatch: keygen: %w", err)
	}
	if err := h.writeBlob(ctx, h.res.RWBase()+offSMMPub, kp.PublicBytes()); err != nil {
		return err
	}
	h.key = &chanKey{kp: kp}
	return nil
}

// handlePackage is the main §V-C workflow: fetch → decrypt → verify →
// dispatch (patch or rollback).
func (h *Handler) handlePackage(ctx *smm.Context, _ uint64) error {
	h.lastBreakdown = Breakdown{KeyGen: ctx.Model().KeyGen}

	// Derive the session key from the enclave's public blob in mem_RW.
	if h.key == nil {
		return h.fail(ctx, ErrNoSession)
	}
	session, err := h.deriveSession(ctx, h.key)
	if err != nil {
		return h.fail(ctx, err)
	}
	// Single-use credential: it is consumed whether or not the rest of
	// the operation succeeds (replayed ciphertexts die here). A fresh
	// one is generated and published before leaving SMM — the paper's
	// "dynamically changed before each kernel patch" — so steady-state
	// patching needs no separate key-exchange SMI.
	h.key = nil
	defer func() {
		// A rekey failure only delays the next patch (the operator
		// re-bootstraps with CmdKeyExchange); it must not mask the
		// outcome of this one.
		_ = h.rekey(ctx)
	}()

	// Fetch the staged ciphertext from mem_W.
	ciphertext, err := h.readBlob(ctx, h.res.WBase()+offPackage, int(h.res.W.Size))
	if err != nil {
		return h.fail(ctx, fmt.Errorf("smmpatch: fetch: %w", err))
	}

	pkg, err := h.decryptAndVerify(ctx, session, ciphertext, &h.lastBreakdown)
	if err != nil {
		return h.fail(ctx, err)
	}

	switch pkg.Op {
	case patch.OpPatch:
		if err := h.applyPatchCore(ctx, pkg, &h.lastBreakdown); err != nil {
			return h.fail(ctx, err)
		}
		if err := h.rebaselineText(ctx); err != nil {
			return h.fail(ctx, err)
		}
		h.observeOutcome(pkg.ID, h.lastBreakdown, h.journalPayloadBytes(), obs.CtrApplied)
		return h.status(ctx, StatusPatched, attestation(pkg.ID, h.journal))
	case patch.OpRollback:
		id, err := h.rollbackCore(ctx, pkg, &h.lastBreakdown)
		if err != nil {
			return h.fail(ctx, err)
		}
		if err := h.rebaselineText(ctx); err != nil {
			return h.fail(ctx, err)
		}
		h.observeOutcome(id, h.lastBreakdown, 0, obs.CtrRolledBack)
		return h.status(ctx, StatusRolledBack, attestation(id, h.journal))
	default:
		return h.fail(ctx, fmt.Errorf("smmpatch: bad op %d", pkg.Op))
	}
}

// deriveSession reads the enclave's public blob (ephemeral DH key, or
// ratchet salt in derived-session mode) from mem_RW and derives the
// package transport session from the given channel credential.
func (h *Handler) deriveSession(ctx *smm.Context, key *chanKey) (*kcrypto.Session, error) {
	peerPub, err := h.readBlob(ctx, h.res.RWBase()+offEnclavePub, 4096)
	if err != nil {
		return nil, fmt.Errorf("smmpatch: read enclave key: %w", err)
	}
	return h.sessionFor(key, peerPub)
}

// sessionFor derives a transport session from the channel credential
// and a peer (enclave ephemeral) public blob. In DH mode the key is
// SHA-256 of the shared group element; in derived-session mode it is
// HMAC(root, smmNonce, enclaveSalt) — both sides contribute fresh
// entropy per package, so the replay properties match.
func (h *Handler) sessionFor(key *chanKey, peerPub []byte) (*kcrypto.Session, error) {
	var shared []byte
	if key.kp != nil {
		var err error
		shared, err = key.kp.SharedSecret(peerPub)
		if err != nil {
			return nil, fmt.Errorf("smmpatch: key agreement: %w", err)
		}
	} else {
		if len(peerPub) == 0 {
			return nil, fmt.Errorf("smmpatch: empty enclave salt")
		}
		shared = kcrypto.DeriveKey(h.sessionRoot, key.nonce, peerPub)
	}
	session, err := kcrypto.NewSession(shared, h.rng)
	if err != nil {
		return nil, fmt.Errorf("smmpatch: session: %w", err)
	}
	return session, nil
}

// decryptAndVerify runs the package through decryption, parsing,
// integrity verification, and the version check, recording the
// Decrypt/Verify stage costs into bd. Stage times are measured as
// deltas of the SMI's charged cost, which — unlike clock spans — stays
// exact when concurrent pipeline goroutines advance the shared clock.
func (h *Handler) decryptAndVerify(ctx *smm.Context, session *kcrypto.Session, ciphertext []byte, bd *Breakdown) (*patch.Package, error) {
	// Decrypt (charged per ciphertext byte, Table III column 1).
	start := ctx.Charged()
	plaintext, err := session.Decrypt(ciphertext)
	ctx.Charge(ctx.Model().DecryptFixed, ctx.Model().DecryptPerByte, len(ciphertext))
	bd.Decrypt = ctx.Charged() - start
	if err != nil {
		return nil, fmt.Errorf("smmpatch: decrypt: %w", err)
	}

	// Parse and verify (Table III column 2).
	start = ctx.Charged()
	pkg, err := patch.Unmarshal(plaintext)
	if err != nil {
		ctx.Charge(ctx.Model().VerifyFixed, ctx.Model().VerifyPerByte, len(plaintext))
		bd.Verify = ctx.Charged() - start
		return nil, fmt.Errorf("smmpatch: parse: %w", err)
	}
	perByte := ctx.Model().VerifyPerByte
	if pkg.HashAlg == kcrypto.HashSDBM {
		perByte = ctx.Model().VerifySDBMPerByte
	}
	for i, f := range pkg.Funcs {
		sum, err := kcrypto.Sum(pkg.HashAlg, f.Payload)
		ctx.Charge(0, perByte, len(f.Payload))
		if err != nil {
			return nil, err
		}
		if sum != pkg.FuncHashes[i] {
			bd.Verify = ctx.Charged() - start
			return nil, fmt.Errorf("%w: function %s", ErrBadIntegrity, f.Name)
		}
	}
	ctx.Charge(ctx.Model().VerifyFixed, 0, 0)
	bd.Verify = ctx.Charged() - start

	if pkg.KernelVersion != h.kernelVersion {
		return nil, fmt.Errorf("%w: package %q, running %q",
			ErrVersionSkew, pkg.KernelVersion, h.kernelVersion)
	}
	return pkg, nil
}

// applyPatchCore performs the §V-C patch steps on a verified package:
// duplicate/activeness checks, bounds checks, transactional mutation,
// and journaling. It records the Apply stage cost in bd but does not
// write the status mailbox or rebaseline the text watch — callers
// (single-package and batch paths) do that per their own protocol.
func (h *Handler) applyPatchCore(ctx *smm.Context, pkg *patch.Package, bd *Breakdown) error {
	for _, j := range h.journal {
		if j.id == pkg.ID {
			return fmt.Errorf("%w: %s", ErrDuplicate, pkg.ID)
		}
	}
	start := ctx.Charged()
	if h.checkActive {
		if err := h.activenessCheck(ctx, pkg); err != nil {
			return err
		}
	}
	entry := appliedPatch{id: pkg.ID, memXPrev: h.memXUsed, dataPrev: h.dataUsed}

	// Bounds-check every write target before touching memory: the
	// package came from outside SMRAM and is untrusted input even
	// after integrity checking.
	memXEnd := h.place.MemXBase + h.place.MemXSize
	for _, f := range pkg.Funcs {
		if f.PAddr < h.place.MemXBase+h.memXUsed || f.PAddr+uint64(len(f.Payload)) > memXEnd {
			return fmt.Errorf("smmpatch: %s payload placement %#x outside free mem_X", f.Name, f.PAddr)
		}
	}

	// The apply is transactional: any failure past the first mutation
	// undoes everything journaled so far, so a bad package can never
	// leave the kernel half-patched (§II's "patching failures" are a
	// motivating reliability concern).
	abort := func(err error) error {
		h.undoPartial(ctx, &entry)
		return err
	}

	// Step two (§V-C): global/data edits.
	for _, g := range pkg.Globals {
		ag := appliedGlobal{addr: g.Addr, applied: g.Init}
		if len(g.Init) > 0 {
			orig := make([]byte, len(g.Init))
			if err := ctx.Read(g.Addr, orig); err != nil {
				return abort(fmt.Errorf("smmpatch: global %s: %w", g.Name, err))
			}
			ag.original = orig
			if err := ctx.Write(g.Addr, g.Init); err != nil {
				return abort(fmt.Errorf("smmpatch: global %s: %w", g.Name, err))
			}
			ctx.Charge(0, ctx.Model().ApplyPerByte, len(g.Init))
		}
		entry.globals = append(entry.globals, ag)
	}

	// Step three: install payloads and trampolines.
	maxCursor := h.memXUsed
	for i, f := range pkg.Funcs {
		if err := ctx.Write(f.PAddr, f.Payload); err != nil {
			return abort(fmt.Errorf("smmpatch: install %s: %w", f.Name, err))
		}
		ctx.Charge(0, ctx.Model().ApplyPerByte, len(f.Payload))

		af := appliedFunc{
			name:        f.Name,
			paddr:       f.PAddr,
			payloadHash: pkg.FuncHashes[i],
			payloadLen:  len(f.Payload),
		}
		if f.TAddr != 0 {
			orig := make([]byte, len(f.TrampolineBytes))
			if err := ctx.Read(f.TrampolineAt, orig); err != nil {
				return abort(fmt.Errorf("smmpatch: journal %s: %w", f.Name, err))
			}
			if err := ctx.Write(f.TrampolineAt, f.TrampolineBytes); err != nil {
				return abort(fmt.Errorf("smmpatch: trampoline %s: %w", f.Name, err))
			}
			ctx.Charge(0, ctx.Model().ApplyPerByte, len(f.TrampolineBytes))
			af.trampolineAt = f.TrampolineAt
			af.original = orig
			af.trampoline = append([]byte(nil), f.TrampolineBytes...)
		}
		entry.funcs = append(entry.funcs, af)

		end := f.PAddr + uint64(len(f.Payload)) - h.place.MemXBase
		if end > maxCursor {
			maxCursor = end
		}
	}
	h.memXUsed = maxCursor
	for _, g := range pkg.Globals {
		if g.Addr >= h.place.DataAllocBase && g.Addr < h.place.DataAllocBase+h.place.DataAllocSize {
			end := g.Addr + uint64(len(g.Init)) - h.place.DataAllocBase
			if end > h.dataUsed {
				h.dataUsed = end
			}
		}
	}
	h.journal = append(h.journal, entry)
	bd.Apply = ctx.Charged() - start
	return nil
}

// undoPartial reverts the mutations a failed apply already journaled
// (best effort — the targets were writable moments ago).
func (h *Handler) undoPartial(ctx *smm.Context, entry *appliedPatch) {
	for i := len(entry.funcs) - 1; i >= 0; i-- {
		f := entry.funcs[i]
		if f.trampolineAt != 0 {
			_ = ctx.Write(f.trampolineAt, f.original)
		}
	}
	for i := len(entry.globals) - 1; i >= 0; i-- {
		g := entry.globals[i]
		if g.original != nil {
			_ = ctx.Write(g.addr, g.original)
		}
	}
}

// rollbackCore undoes the most recent applied patch (§V-C "the last
// patching operation can always be rolled back") and returns its ID
// for attestation. Status/rebaseline are left to the caller.
func (h *Handler) rollbackCore(ctx *smm.Context, pkg *patch.Package, bd *Breakdown) (string, error) {
	start := ctx.Charged()
	if len(h.journal) == 0 {
		return "", ErrNothingApplied
	}
	last := h.journal[len(h.journal)-1]
	if pkg.ID != "" && pkg.ID != last.id {
		return "", fmt.Errorf("%w: want %s, asked %s", ErrRollbackOrder, last.id, pkg.ID)
	}
	// Restore trampoline sites (reverse order) and global edits.
	for i := len(last.funcs) - 1; i >= 0; i-- {
		f := last.funcs[i]
		if f.trampolineAt == 0 {
			continue
		}
		if err := ctx.Write(f.trampolineAt, f.original); err != nil {
			return "", fmt.Errorf("smmpatch: rollback %s: %w", f.name, err)
		}
		ctx.Charge(0, ctx.Model().ApplyPerByte, len(f.original))
	}
	for i := len(last.globals) - 1; i >= 0; i-- {
		g := last.globals[i]
		if g.original != nil {
			if err := ctx.Write(g.addr, g.original); err != nil {
				return "", fmt.Errorf("smmpatch: rollback global: %w", err)
			}
			ctx.Charge(0, ctx.Model().ApplyPerByte, len(g.original))
		}
	}
	h.memXUsed = last.memXPrev
	h.dataUsed = last.dataPrev
	h.journal = h.journal[:len(h.journal)-1]
	bd.Apply = ctx.Charged() - start
	return last.id, nil
}

// handleIntrospect verifies every applied patch is still in place:
// trampolines unmodified and mem_X payloads matching their recorded
// digests. Tampering (e.g. a rootkit reverting the patch, §V-D) is
// repaired and counted.
func (h *Handler) handleIntrospect(ctx *smm.Context, _ uint64) error {
	tampered := false
	for _, j := range h.journal {
		for _, f := range j.funcs {
			if f.trampolineAt != 0 {
				cur := make([]byte, len(f.trampoline))
				if err := ctx.Read(f.trampolineAt, cur); err != nil {
					return h.fail(ctx, err)
				}
				ctx.Charge(0, ctx.Model().VerifyPerByte, len(cur))
				if string(cur) != string(f.trampoline) {
					tampered = true
					if err := ctx.Write(f.trampolineAt, f.trampoline); err != nil {
						return h.fail(ctx, err)
					}
				}
			}
			buf := make([]byte, f.payloadLen)
			if err := ctx.Read(f.paddr, buf); err != nil {
				return h.fail(ctx, err)
			}
			ctx.Charge(0, ctx.Model().VerifyPerByte, len(buf))
			sum, err := kcrypto.Sum(kcrypto.HashSHA256, buf)
			if err != nil {
				return h.fail(ctx, err)
			}
			if sum != f.payloadHash {
				// mem_X should be unreachable to the kernel; payload
				// corruption means something worse than a reversion.
				// There is no pristine copy to restore: report only.
				tampered = true
			}
		}
	}
	// Whole-text integrity sweep against the CmdWatchText baseline:
	// catches kernel text modifications unrelated to applied patches
	// (reported, not repaired — there is no pristine copy in SMRAM).
	if h.textBaselineSet {
		sum, err := h.maskedTextHash(ctx)
		if err != nil {
			return h.fail(ctx, err)
		}
		if sum != h.textBaseline {
			tampered = true
		}
	}
	if tampered {
		h.tamperEvents++
		return h.status(ctx, StatusTampered, attestation("introspect", h.journal))
	}
	return h.status(ctx, StatusIdle, attestation("introspect", h.journal))
}

// activenessCheck refuses to patch functions that are live on some
// vCPU: the saved RIP lies inside the target, or a word of the live
// stack portion points into it (a conservative return-address scan,
// the SMM equivalent of kpatch's stop_machine stack check).
func (h *Handler) activenessCheck(ctx *smm.Context, pkg *patch.Package) error {
	states, err := ctx.VCPUStates()
	if err != nil {
		return err
	}
	inTarget := func(addr uint64) (string, bool) {
		for _, f := range pkg.Funcs {
			if f.TAddr != 0 && addr >= f.TAddr && addr < f.TAddr+f.TSize {
				return f.Name, true
			}
		}
		return "", false
	}
	for i, st := range states {
		if name, hit := inTarget(st.RIP); hit {
			return fmt.Errorf("%w: vCPU %d executing in %s (rip %#x)", ErrTargetActive, i, name, st.RIP)
		}
		// Scan the live stack portion [SP, stack top) for return
		// addresses into any target.
		base := uint64(machine.StackRegionBase) + uint64(i)*machine.StackSize
		top := base + machine.StackSize
		sp := st.Reg[isa.RegSP]
		if sp < base || sp > top {
			continue // vCPU idle or using a foreign stack: nothing live
		}
		for a := sp; a+8 <= top; a += 8 {
			v, err := ctx.ReadU64(a)
			if err != nil {
				return err
			}
			if name, hit := inTarget(v); hit {
				return fmt.Errorf("%w: vCPU %d has a return address into %s at stack %#x",
					ErrTargetActive, i, name, a)
			}
		}
	}
	return nil
}

// handleWatchText baselines a masked hash of the kernel text segment:
// the journaled trampoline sites are zeroed before hashing so KShot's
// own patches never register as tampering.
func (h *Handler) handleWatchText(ctx *smm.Context, _ uint64) error {
	if h.textSize == 0 {
		return h.fail(ctx, errors.New("smmpatch: text watching not configured"))
	}
	sum, err := h.maskedTextHash(ctx)
	if err != nil {
		return h.fail(ctx, err)
	}
	h.textBaseline = sum
	h.textBaselineSet = true
	return h.status(ctx, StatusIdle, sum[:])
}

// rebaselineText refreshes the text-watch baseline after KShot itself
// legitimately modified kernel text (patch applied or rolled back).
func (h *Handler) rebaselineText(ctx *smm.Context) error {
	if !h.textBaselineSet {
		return nil
	}
	sum, err := h.maskedTextHash(ctx)
	if err != nil {
		return err
	}
	h.textBaseline = sum
	return nil
}

// maskedTextHash hashes the kernel text with KShot's own modifications
// masked out.
func (h *Handler) maskedTextHash(ctx *smm.Context) ([kcrypto.DigestSize]byte, error) {
	buf := make([]byte, h.textSize)
	if err := ctx.Read(h.textBase, buf); err != nil {
		return [kcrypto.DigestSize]byte{}, err
	}
	ctx.Charge(0, ctx.Model().VerifyPerByte, len(buf))
	for _, j := range h.journal {
		for _, f := range j.funcs {
			if f.trampolineAt == 0 {
				continue
			}
			off := f.trampolineAt - h.textBase
			for i := 0; i < len(f.trampoline) && off+uint64(i) < uint64(len(buf)); i++ {
				buf[off+uint64(i)] = 0
			}
		}
	}
	return kcrypto.Sum(kcrypto.HashSHA256, buf)
}

// attestation digests the applied-patch set so the remote server can
// confirm, through the status mailbox, what state the machine is in.
func attestation(op string, journal []appliedPatch) []byte {
	var b []byte
	b = append(b, op...)
	for _, j := range journal {
		b = append(b, 0)
		b = append(b, j.id...)
	}
	sum, _ := kcrypto.Sum(kcrypto.HashSHA256, b)
	return sum[:]
}

// status publishes the result of an SMI in the mem_RW mailbox,
// appending an HMAC when an attestation key is provisioned.
func (h *Handler) status(ctx *smm.Context, code uint32, digest []byte) error {
	h.seq++
	buf := make([]byte, statusRecordSize)
	binary.LittleEndian.PutUint32(buf, code)
	binary.LittleEndian.PutUint64(buf[4:], h.seq)
	copy(buf[12:], digest)
	if len(h.attKey) > 0 {
		mac := kcrypto.MAC(h.attKey, buf[:12+kcrypto.DigestSize])
		copy(buf[12+kcrypto.DigestSize:], mac[:])
	}
	return ctx.Write(h.res.RWBase()+offStatus, buf)
}

// statusRecordSize is code(4) + seq(8) + digest(32) + mac(32).
const statusRecordSize = 4 + 8 + kcrypto.DigestSize + kcrypto.DigestSize

// fail publishes an error status and returns the error.
func (h *Handler) fail(ctx *smm.Context, err error) error {
	if serr := h.status(ctx, StatusError, nil); serr != nil {
		return fmt.Errorf("%w (and status write failed: %v)", err, serr)
	}
	return err
}

func (h *Handler) writeBlob(ctx *smm.Context, addr uint64, data []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if err := ctx.Write(addr, lenBuf[:]); err != nil {
		return err
	}
	return ctx.Write(addr+4, data)
}

func (h *Handler) readBlob(ctx *smm.Context, addr uint64, maxLen int) ([]byte, error) {
	var lenBuf [4]byte
	if err := ctx.Read(addr, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n <= 0 || n > maxLen {
		return nil, fmt.Errorf("blob at %#x: bad length %d", addr, n)
	}
	out := make([]byte, n)
	if err := ctx.Read(addr+4, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Status is one decoded status mailbox record.
type Status struct {
	Code   uint32
	Seq    uint64
	Digest []byte
	MAC    [kcrypto.DigestSize]byte
}

// Verify reports whether the record's MAC is valid under the
// attestation key.
func (s Status) Verify(key []byte) bool {
	buf := make([]byte, 12+kcrypto.DigestSize)
	binary.LittleEndian.PutUint32(buf, s.Code)
	binary.LittleEndian.PutUint64(buf[4:], s.Seq)
	copy(buf[12:], s.Digest)
	return kcrypto.VerifyMAC(key, buf, s.MAC)
}

// ReadStatus reads the status mailbox at the given privilege — the
// helper application polls this after each SMI.
func ReadStatus(m *mem.Physical, priv mem.Priv, res *mem.Reserved) (code uint32, seq uint64, digest []byte, err error) {
	st, err := ReadStatusRecord(m, priv, res)
	if err != nil {
		return 0, 0, nil, err
	}
	return st.Code, st.Seq, st.Digest, nil
}

// ReadStatusRecord reads the full status record including its MAC.
func ReadStatusRecord(m *mem.Physical, priv mem.Priv, res *mem.Reserved) (Status, error) {
	buf := make([]byte, statusRecordSize)
	if err := m.Read(priv, res.RWBase()+offStatus, buf); err != nil {
		return Status{}, err
	}
	st := Status{
		Code:   binary.LittleEndian.Uint32(buf),
		Seq:    binary.LittleEndian.Uint64(buf[4:]),
		Digest: append([]byte(nil), buf[12:12+kcrypto.DigestSize]...),
	}
	copy(st.MAC[:], buf[12+kcrypto.DigestSize:])
	return st, nil
}

// StageBlob writes a length-prefixed blob at the given privilege: the
// untrusted helper uses it to stage the enclave public key (mem_RW)
// and the encrypted package (mem_W).
func StageBlob(m *mem.Physical, priv mem.Priv, addr uint64, data []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if err := m.Write(priv, addr, lenBuf[:]); err != nil {
		return err
	}
	return m.Write(priv, addr+4, data)
}

// EnclavePubAddr returns where the helper stages the enclave's public
// key.
func EnclavePubAddr(res *mem.Reserved) uint64 { return res.RWBase() + offEnclavePub }

// SMMPubAddr returns where SMM publishes its public key.
func SMMPubAddr(res *mem.Reserved) uint64 { return res.RWBase() + offSMMPub }

// PackageAddr returns where the helper stages the encrypted package.
func PackageAddr(res *mem.Reserved) uint64 { return res.WBase() + offPackage }

// ReadSMMPub reads SMM's published public key at the given privilege.
func ReadSMMPub(m *mem.Physical, priv mem.Priv, res *mem.Reserved) ([]byte, error) {
	var lenBuf [4]byte
	if err := m.Read(priv, SMMPubAddr(res), lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n <= 0 || n > 4096 {
		return nil, fmt.Errorf("smm public key: bad length %d", n)
	}
	out := make([]byte, n)
	if err := m.Read(priv, SMMPubAddr(res)+4, out); err != nil {
		return nil, err
	}
	return out, nil
}
