package smmpatch

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// windowReader serves parseBatchDir reads from a flat byte slice
// standing in for the mem_W window, and fails the test on any read
// outside [base, base+len(win)) — parseBatchDir bounds-checks every
// length before reading, so an out-of-window read is a parser bug,
// not an input problem.
func windowReader(t *testing.T, base uint64, win []byte) func(addr uint64, dst []byte) error {
	return func(addr uint64, dst []byte) error {
		if addr < base || addr-base+uint64(len(dst)) > uint64(len(win)) {
			t.Fatalf("parser read [%#x,+%d) outside the %d-byte window", addr, len(dst), len(win))
			return fmt.Errorf("unreachable")
		}
		copy(dst, win[addr-base:])
		return nil
	}
}

// FuzzKSBTParse hammers the KSBT staging-directory parser with
// arbitrary bytes. The directory comes from the untrusted helper via
// write-only memory, so the parser is a trust boundary:
//
//   - it must never panic or read outside the staging window;
//   - a rejection is fine (ErrBadBatch) — that is the job;
//   - an accepted directory must be canonical: re-encoding the parsed
//     members reproduces exactly the consumed prefix of the input,
//     and re-parsing that encoding yields identical members.
func FuzzKSBTParse(f *testing.F) {
	f.Add([]byte("KSBT"))                 // magic only, no count
	f.Add([]byte("KSBT\xff\xff\xff\xff")) // absurd member count
	f.Add([]byte("KSBU\x01\x00\x00\x00")) // wrong magic
	f.Add(encodeBatchDir([]BatchMember{
		{EnclavePub: []byte("pub-0"), Ciphertext: []byte("sealed-package-0")},
	}))
	two := encodeBatchDir([]BatchMember{
		{EnclavePub: []byte("alpha-pub"), Ciphertext: []byte("sealed-1")},
		{EnclavePub: []byte("beta-pub"), Ciphertext: []byte("sealed-2")},
	})
	f.Add(two)
	f.Add(two[:len(two)-3]) // truncated final blob
	f.Add(append(append([]byte{}, two...), "trailing garbage"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x100_0000
		members, err := parseBatchDir(windowReader(t, base, data), base, base+uint64(len(data)))
		if err != nil {
			return
		}
		if len(members) == 0 || len(members) > MaxBatchMembers {
			t.Fatalf("accepted directory with %d members", len(members))
		}
		consumed := uint64(8)
		for i, m := range members {
			if len(m.EnclavePub) == 0 || len(m.Ciphertext) == 0 {
				t.Fatalf("member %d accepted with empty blob", i)
			}
			consumed += 8 + uint64(len(m.EnclavePub)) + uint64(len(m.Ciphertext))
		}
		re := encodeBatchDir(members)
		if uint64(len(re)) != consumed || !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode is not the consumed prefix:\n in: %x\nout: %x", data[:consumed], re)
		}
		again, err := parseBatchDir(windowReader(t, base, re), base, base+uint64(len(re)))
		if err != nil {
			t.Fatalf("re-parse of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(members, again) {
			t.Fatalf("re-parse disagrees:\n first: %+v\nsecond: %+v", members, again)
		}
	})
}
