package introspect

import (
	"context"
	"testing"
	"time"

	"kshot/internal/mem"
	"kshot/internal/timing"
)

const (
	dtBase = uint64(0x10000)
	dtSize = uint64(0x20000)
	dtCmd  = uint8(0x50)
)

// detRig wires a real Physical (introspected executable region) to a
// channel and detector on one fake wall clock.
type detRig struct {
	m    *mem.Physical
	ch   *Channel
	det  *Detector
	wall *timing.FakeWall
}

func newDetRig(t *testing.T, capacity int) *detRig {
	t.Helper()
	m := mem.New(1 << 20)
	if _, err := m.Map("text", dtBase, dtSize, mem.Perms{
		Kernel: mem.PermRWX, SMM: mem.PermRWX,
	}); err != nil {
		t.Fatal(err)
	}
	wall := timing.NewFakeWall()
	ch := NewChannel(capacity, wall)
	m.SetIntrospector(ch)
	det, err := NewDetector(ch, m, dtBase, dtSize, DetectorConfig{
		PatchCmds: []uint8{dtCmd},
		Wall:      wall,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &detRig{m: m, ch: ch, det: det, wall: wall}
}

func (r *detRig) write(t *testing.T, addr uint64, b []byte) {
	t.Helper()
	if err := r.m.Write(mem.PrivKernel, addr, b); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorTamperOutsideSMI(t *testing.T) {
	r := newDetRig(t, 64)
	r.write(t, dtBase+0x40, []byte{0xCC})
	r.wall.Sleep(context.Background(), 5*time.Millisecond)

	vs := r.det.Sweep()
	if len(vs) != 1 || vs[0].Kind != TamperDetected {
		t.Fatalf("verdicts = %v, want one TamperDetected", vs)
	}
	v := vs[0]
	if v.Addr != dtBase+0x40 {
		t.Errorf("verdict addr = %#x, want %#x", v.Addr, dtBase+0x40)
	}
	if len(v.Frames) == 0 {
		t.Error("verdict carries no dirty frames")
	}
	if v.Latency != 5*time.Millisecond {
		t.Errorf("latency = %v, want 5ms on the fake wall", v.Latency)
	}
	// One incident, one verdict: the sweep rebaselined.
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("second sweep re-raised: %v", vs)
	}
}

func TestDetectorLegitimateWriteInsideSMI(t *testing.T) {
	r := newDetRig(t, 64)
	r.det.ExpectSMI(dtCmd)
	r.ch.OnSMIEnter(dtCmd)
	r.write(t, dtBase+0x80, []byte{0x90, 0x90})
	r.ch.OnSMIExit(dtCmd, time.Millisecond)
	r.det.Rebaseline() // what the pipeline does after a patch SMI
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("announced SMI write raised %v", vs)
	}
}

// TestDetectorSMIBracketSpansSweeps sweeps in the middle of an SMI
// window: the bracket state must carry into the next sweep.
func TestDetectorSMIBracketSpansSweeps(t *testing.T) {
	r := newDetRig(t, 64)
	r.det.ExpectSMI(dtCmd)
	r.ch.OnSMIEnter(dtCmd)
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("mid-SMI sweep raised %v", vs)
	}
	r.write(t, dtBase, []byte{0xAA})
	r.ch.OnSMIExit(dtCmd, time.Millisecond)
	r.det.Rebaseline()
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("write under carried-over SMI bracket raised %v", vs)
	}
}

// TestDetectorTrustedWindowDefersDiff pins the sweep-vs-patch race:
// a background sweep that fires after a pipeline SMI's text writes
// but before the post-SMI rebaseline must not indict the patch's own
// bytes. The trusted-window bracket defers the frame diff while open
// and closing it rebaselines atomically; tamper detection resumes at
// full strength afterwards.
func TestDetectorTrustedWindowDefersDiff(t *testing.T) {
	r := newDetRig(t, 64)

	// Pipeline announces and enters its SMI, writes text… and a sweep
	// fires before the window closes: silence, not tamper-detected.
	r.det.ExpectSMI(dtCmd)
	r.det.BeginTrustedWindow()
	r.ch.OnSMIEnter(dtCmd)
	r.write(t, dtBase+0x100, []byte{0xAA, 0xBB})
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("sweep inside trusted window raised %v", vs)
	}
	r.ch.OnSMIExit(dtCmd, time.Millisecond)
	r.det.EndTrustedWindow()
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("sweep after closed trusted window raised %v", vs)
	}

	// The backstop is deferred, not disabled: with the window closed,
	// a tamper whose exec-write event was lost still raises via the
	// frame diff.
	r.write(t, dtBase+0x200, []byte{0xCC})
	r.ch.Drain(nil) // simulate the event being lost before the sweep
	vs := r.det.Sweep()
	if len(vs) != 1 || vs[0].Kind != TamperDetected {
		t.Fatalf("post-window tamper verdicts = %v, want one TamperDetected", vs)
	}
	if len(vs[0].Frames) == 0 {
		t.Fatalf("post-window tamper carried no frame evidence: %+v", vs[0])
	}
}

// TestDetectorTrustedWindowNests: nested windows (repair inside a
// rollout) only re-enable the diff when the outermost closes. The
// writes ride inside a (non-patch) SMI bracket — the window defers
// only the frame diff, never event classification.
func TestDetectorTrustedWindowNests(t *testing.T) {
	r := newDetRig(t, 64)
	r.det.BeginTrustedWindow()
	r.det.BeginTrustedWindow()
	r.ch.OnSMIEnter(0)
	r.write(t, dtBase, []byte{0x01})
	r.det.EndTrustedWindow()
	r.write(t, dtBase+8, []byte{0x02})
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("sweep inside outer trusted window raised %v", vs)
	}
	r.ch.OnSMIExit(0, 0)
	r.det.EndTrustedWindow()
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("sweep after nested windows closed raised %v", vs)
	}
}

func TestDetectorStaleReplay(t *testing.T) {
	r := newDetRig(t, 64)
	// Announced SMI: clean.
	r.det.ExpectSMI(dtCmd)
	r.ch.OnSMIEnter(dtCmd)
	r.ch.OnSMIExit(dtCmd, 0)
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("announced SMI raised %v", vs)
	}
	// Same command again with no announcement: replay.
	r.ch.OnSMIEnter(dtCmd)
	r.ch.OnSMIExit(dtCmd, 0)
	vs := r.det.Sweep()
	if len(vs) != 1 || vs[0].Kind != StalePatchReplay || vs[0].Cmd != dtCmd {
		t.Fatalf("verdicts = %v, want one StalePatchReplay for %#x", vs, dtCmd)
	}
	// Non-patch SMIs (key exchange, introspection) need no announcement.
	r.ch.OnSMIEnter(0x4B)
	r.ch.OnSMIExit(0x4B, 0)
	if vs := r.det.Sweep(); len(vs) != 0 {
		t.Fatalf("non-patch SMI raised %v", vs)
	}
}

// TestDetectorRebaselineDoesNotLaunderEvents is the design point that
// makes racing the patcher unprofitable: a tamper write that lands
// just before a legitimate rebaseline is absorbed into the frame-diff
// snapshot, but its event still classifies as out-of-window.
func TestDetectorRebaselineDoesNotLaunderEvents(t *testing.T) {
	r := newDetRig(t, 64)
	r.write(t, dtBase+0x100, []byte{0xEE})
	r.det.Rebaseline() // diff is now clean; the event is not
	vs := r.det.Sweep()
	if len(vs) != 1 || vs[0].Kind != TamperDetected {
		t.Fatalf("verdicts = %v, want one TamperDetected from the event alone", vs)
	}
	if len(vs[0].Frames) != 0 {
		t.Errorf("frames = %v, want none (diff was rebaselined)", vs[0].Frames)
	}
}

// TestDetectorDiffBackstopCatchesDroppedEvent fills the tiny event
// buffer so the tamper write's event is dropped; the frame diff must
// still catch the damage.
func TestDetectorDiffBackstopCatchesDroppedEvent(t *testing.T) {
	r := newDetRig(t, 1)
	r.ch.OnCodeEpoch(1) // occupies the single slot
	r.write(t, dtBase+0x200, []byte{0xDD})
	if st := r.ch.Stats(); st.Dropped == 0 {
		t.Fatal("test setup: tamper event was not dropped")
	}
	vs := r.det.Sweep()
	if len(vs) != 1 || vs[0].Kind != TamperDetected {
		t.Fatalf("verdicts = %v, want one TamperDetected from the diff", vs)
	}
	if vs[0].Addr != 0 || len(vs[0].Frames) == 0 {
		t.Fatalf("verdict = %+v, want frame-only attribution", vs[0])
	}
}

func TestDetectorGroomThreshold(t *testing.T) {
	r := newDetRig(t, 64)
	r.det.NoteActiveRefusal("CVE-X")
	r.det.NoteActiveRefusal("CVE-X")
	if vs := r.det.Verdicts(); len(vs) != 0 {
		t.Fatalf("below-threshold refusals raised %v", vs)
	}
	r.det.NoteActiveRefusal("CVE-X") // threshold'th
	vs := r.det.TakeVerdicts()
	if len(vs) != 1 || vs[0].Kind != ActivenessGroomed || vs[0].CVE != "CVE-X" {
		t.Fatalf("verdicts = %v, want one ActivenessGroomed for CVE-X", vs)
	}
	// NoteApplied ends the streak: two refusals, an apply, two more.
	r.det.NoteActiveRefusal("CVE-Y")
	r.det.NoteActiveRefusal("CVE-Y")
	r.det.NoteApplied("CVE-Y")
	r.det.NoteActiveRefusal("CVE-Y")
	r.det.NoteActiveRefusal("CVE-Y")
	if vs := r.det.Verdicts(); len(vs) != 0 {
		t.Fatalf("interrupted streak raised %v", vs)
	}
}

func TestDetectorBackgroundLoop(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := m.Map("text", dtBase, dtSize, mem.Perms{
		Kernel: mem.PermRWX, SMM: mem.PermRWX,
	}); err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(64, nil) // background loop: real clock
	m.SetIntrospector(ch)
	det, err := NewDetector(ch, m, dtBase, dtSize, DetectorConfig{PatchCmds: []uint8{dtCmd}})
	if err != nil {
		t.Fatal(err)
	}
	det.Start(time.Millisecond)
	defer det.Stop()
	if err := m.Write(mem.PrivKernel, dtBase+8, []byte{0x66}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(det.Verdicts()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweep never detected the tamper")
		}
		time.Sleep(time.Millisecond)
	}
	if vs := det.Verdicts(); vs[0].Kind != TamperDetected {
		t.Fatalf("verdict = %+v", vs[0])
	}
	det.Stop() // idempotent
}

func TestDetectorNilSafety(t *testing.T) {
	var d *Detector
	d.Rebaseline()
	d.ExpectSMI(dtCmd)
	d.NoteActiveRefusal("x")
	d.NoteApplied("x")
	d.SetObserver(nil)
	d.Start(time.Millisecond)
	d.Stop()
	if vs := d.Sweep(); vs != nil {
		t.Fatalf("nil detector swept %v", vs)
	}
	if vs := d.Verdicts(); vs != nil {
		t.Fatalf("nil detector verdicts %v", vs)
	}
	if vs := d.TakeVerdicts(); vs != nil {
		t.Fatalf("nil detector take %v", vs)
	}
	if st := d.Stats(); st != (DetectorStats{}) {
		t.Fatalf("nil detector stats %+v", st)
	}
	if _, err := NewDetector(NewChannel(1, nil), nil, 0, 0, DetectorConfig{}); err == nil {
		t.Fatal("NewDetector accepted nil memory")
	}
}
