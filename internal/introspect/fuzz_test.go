package introspect

import (
	"bytes"
	"testing"

	"kshot/internal/timing"
)

// FuzzEventChannel drives arbitrary interleavings of emits, arm
// toggles, and receives through the bounded channel and holds it to
// its accounting identity: at quiescence every emitted event is
// exactly one of delivered, buffered, or dropped; receives come out
// in FIFO order with strictly increasing sequence numbers; and the
// synchronous tap sees every emit, including the dropped ones.
func FuzzEventChannel(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x01, 0x02, 0x06, 0x06, 0x07})
	f.Add([]byte{0x02, 0x05, 0x05, 0x05, 0x05, 0x05, 0x06, 0x04, 0x03, 0x07})
	f.Add(bytes.Repeat([]byte{0x00, 0x06}, 32))
	f.Add(bytes.Repeat([]byte{0x03, 0x04}, 9))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		capacity := int(ops[0]&0x0F) + 1 // 1..16: small enough to overflow
		ops = ops[1:]
		ch := NewChannel(capacity, timing.NewFakeWall())
		var tapped uint64
		ch.SetTap(func(Event) { tapped++ })

		var (
			emitted   uint64
			delivered uint64
			lastSeq   uint64
		)
		recv := func(ev Event) {
			delivered++
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence went backwards: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		for _, op := range ops {
			switch op % 8 {
			case 0:
				ch.OnExecWrite(uint64(op)<<4, int(op%7)+1, emitted)
				emitted++
			case 1:
				ch.OnCodeEpoch(emitted)
				emitted++
			case 2:
				ch.OnCacheFlush(int(op%4), emitted)
				emitted++
			case 3:
				ch.Arm(true)
				ch.OnStep(int(op%4), uint64(op), 1)
				emitted++
			case 4:
				ch.Arm(false)
				ch.OnStep(0, uint64(op), 1) // disarmed: must not emit
			case 5:
				ch.OnSMIEnter(op)
				emitted++
			case 6:
				if ev, ok := ch.TryRecv(); ok {
					recv(ev)
				}
			case 7:
				for _, ev := range ch.Drain(nil) {
					recv(ev)
				}
			}
		}
		for _, ev := range ch.Drain(nil) {
			recv(ev)
		}

		st := ch.Stats()
		if st.Emitted != emitted {
			t.Fatalf("emitted = %d, channel counted %d", emitted, st.Emitted)
		}
		if tapped != emitted {
			t.Fatalf("tap saw %d of %d emits", tapped, emitted)
		}
		if st.Buffered != 0 {
			t.Fatalf("events still buffered after drain: %+v", st)
		}
		if st.Delivered != delivered {
			t.Fatalf("delivered = %d, channel counted %d", delivered, st.Delivered)
		}
		if st.Emitted != st.Delivered+st.Buffered+st.Dropped {
			t.Fatalf("accounting identity violated: %+v", st)
		}
	})
}
