package introspect

import (
	"testing"

	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

func TestChannelAccounting(t *testing.T) {
	wall := timing.NewFakeWall()
	ch := NewChannel(2, wall)

	ch.OnCodeEpoch(1)
	ch.OnCodeEpoch(2)
	ch.OnCodeEpoch(3) // buffer full: dropped, counted
	st := ch.Stats()
	if st.Emitted != 3 || st.Buffered != 2 || st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("stats after emits = %+v", st)
	}

	ev, ok := ch.TryRecv()
	if !ok || ev.Kind != KindCodeEpoch || ev.Epoch != 1 {
		t.Fatalf("TryRecv = %+v, %v; want first code-epoch event", ev, ok)
	}
	ev2, ok := ch.TryRecv()
	if !ok || ev2.Epoch != 2 || ev2.Seq <= ev.Seq {
		t.Fatalf("TryRecv out of order: %+v after %+v", ev2, ev)
	}
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel succeeded")
	}
	st = ch.Stats()
	if st.Emitted != st.Delivered+st.Buffered+st.Dropped {
		t.Fatalf("accounting identity violated: %+v", st)
	}
	if st.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.Delivered)
	}
}

func TestChannelTapSeesDroppedEvents(t *testing.T) {
	ch := NewChannel(1, timing.NewFakeWall())
	var tapped []Event
	ch.SetTap(func(ev Event) { tapped = append(tapped, ev) })

	ch.OnExecWrite(0x100, 4, 7)
	ch.OnExecWrite(0x200, 4, 8) // dropped from the buffer, still tapped
	if len(tapped) != 2 {
		t.Fatalf("tap saw %d events, want 2", len(tapped))
	}
	if tapped[1].Addr != 0x200 {
		t.Fatalf("tap event = %+v", tapped[1])
	}
	if st := ch.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}

	ch.SetTap(nil)
	ch.OnCodeEpoch(9)
	if len(tapped) != 2 {
		t.Fatal("removed tap still invoked")
	}
}

func TestChannelStepGating(t *testing.T) {
	ch := NewChannel(4, timing.NewFakeWall())
	ch.OnStep(0, 0x40, 3)
	if st := ch.Stats(); st.Emitted != 0 {
		t.Fatalf("disarmed channel emitted a step event: %+v", st)
	}
	ch.Arm(true)
	if !ch.StepArmed() {
		t.Fatal("StepArmed false after Arm(true)")
	}
	ch.OnStep(1, 0x44, 5)
	ev, ok := ch.TryRecv()
	if !ok || ev.Kind != KindStep || ev.CPU != 1 || ev.Addr != 0x44 || ev.Len != 5 {
		t.Fatalf("step event = %+v, %v", ev, ok)
	}
	ch.Arm(false)
	ch.OnStep(1, 0x48, 1)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("disarmed channel delivered a step event")
	}
}

func TestChannelObserverCounters(t *testing.T) {
	ch := NewChannel(1, timing.NewFakeWall())
	h := obs.NewHooks(16, timing.NewFakeWall())
	ch.SetObserver(h)
	ch.OnCodeEpoch(1)
	ch.OnCodeEpoch(2) // dropped
	if got := h.Metrics.Counter(obs.CtrIntrospectEvents).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", obs.CtrIntrospectEvents, got)
	}
	if got := h.Metrics.Counter(obs.CtrIntrospectDrops).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrIntrospectDrops, got)
	}
}

func TestChannelNilSafety(t *testing.T) {
	var ch *Channel
	ch.OnExecWrite(1, 2, 3)
	ch.OnCodeEpoch(4)
	ch.OnCacheFlush(0, 5)
	ch.OnStep(0, 6, 7)
	ch.OnSMIEnter(0x50)
	ch.OnSMIExit(0x50, 0)
	ch.Arm(true)
	ch.SetTap(func(Event) {})
	ch.SetObserver(nil)
	if ch.StepArmed() {
		t.Fatal("nil channel reports armed")
	}
	if st := ch.Stats(); st != (Stats{}) {
		t.Fatalf("nil channel stats = %+v", st)
	}
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("nil channel delivered an event")
	}
	if got := ch.Drain(nil); got != nil {
		t.Fatalf("nil channel drained %v", got)
	}
}

// TestChannelFedByMemoryHooks drives the real producer: writes through
// a mem.Physical with an introspected executable region.
func TestChannelFedByMemoryHooks(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := m.Map("text", 0x10000, 0x20000, mem.Perms{
		Kernel: mem.PermRWX, SMM: mem.PermRWX,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x40000, 0x10000, mem.Perms{
		Kernel: mem.PermRW, SMM: mem.PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(8, timing.NewFakeWall())
	m.SetIntrospector(ch)

	if err := m.Write(mem.PrivKernel, 0x10040, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ev, ok := ch.TryRecv()
	if !ok || ev.Kind != KindExecWrite || ev.Addr != 0x10040 || ev.Len != 3 {
		t.Fatalf("exec-write event = %+v, %v", ev, ok)
	}
	if ev.Epoch == 0 {
		t.Error("exec-write event missing code epoch")
	}

	// Data writes are not code; no event.
	if err := m.Write(mem.PrivKernel, 0x40000, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("data write produced an event")
	}
}
