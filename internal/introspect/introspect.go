// Package introspect is the event-driven kernel-integrity layer: a
// typed, bounded, drop-counting event channel fed by cheap nil-safe
// hooks in the memory, execution, and SMM layers, plus a Detector
// (detector.go) that sweeps kernel text between SMIs and classifies
// what it finds into typed verdicts.
//
// The paper's §V-D introspection is one-shot: tamper once, raise
// CmdIntrospect once, verify once. A production KShot faces an
// attacker who keeps acting while patching is in flight, so this
// package turns the existing snapshot/frame-diff and code-epoch
// machinery into continuous monitoring, modeled on sev-step's typed
// event channel: every write into executable memory, every code-epoch
// bump, every block-cache invalidation, and every SMI entry/exit
// becomes an Event. Producers never block — when the bounded buffer is
// full the event is counted as dropped, and the Detector's frame-diff
// sweep is the backstop that still catches what the dropped event
// described.
//
// Import shape: introspect imports mem and obs (the Detector diffs
// frames and both halves publish counters); the producing layers (mem,
// isa, smm) therefore must NOT import introspect. Each declares a
// small consumer-side sink interface (mem.Introspector,
// isa.IntrospectSink, smm.Introspector) that *Channel satisfies, and
// core wires the channel into all three.
package introspect

import (
	"sync/atomic"
	"time"

	"kshot/internal/obs"
	"kshot/internal/timing"
)

// Config is the user-facing introspection configuration
// (kshot.WithIntrospection / core.Options.Introspection). The zero
// value enables introspection with defaults: a DefaultCapacity event
// buffer, manual sweeps only, step events disarmed.
type Config struct {
	// Capacity bounds the event buffer; <= 0 means DefaultCapacity.
	Capacity int

	// SweepEvery, when > 0, runs the Detector's background sweep loop
	// at this real-time period. Zero leaves sweeping to explicit
	// Detector.Sweep calls (deterministic tests) and to the pipeline's
	// own rebaseline points.
	SweepEvery time.Duration

	// ArmSteps enables per-unit step events from boot. They are the
	// only high-rate event kind; leave false unless the investigation
	// needs instruction-granularity ordering.
	ArmSteps bool

	// GroomThreshold overrides how many consecutive activeness
	// refusals of one patch raise ActivenessGroomed; <= 0 means
	// DefaultGroomThreshold.
	GroomThreshold int
}

// Kind classifies one introspection event.
type Kind uint8

const (
	// KindExecWrite is a write that landed in executable memory — a
	// page-access event in sev-step terms. Legitimate only inside an
	// SMI window (the SMM handler applying or reverting a patch);
	// anywhere else it is direct evidence of kernel-text tampering.
	KindExecWrite Kind = iota + 1

	// KindCodeEpoch is a code-epoch bump without byte attribution:
	// SetPerms or a snapshot Restore invalidated cached translations.
	KindCodeEpoch

	// KindCacheFlush is a vCPU block engine discarding its predecoded
	// cache after observing an epoch mismatch — the execution layer
	// noticing that code changed under it.
	KindCacheFlush

	// KindStep is one retired dispatch unit on a vCPU. Emitted only
	// while the channel is armed (Arm), since per-unit events are the
	// one hook with a per-instruction-scale rate.
	KindStep

	// KindSMIEnter and KindSMIExit bracket one SMI: enter fires before
	// the world switch pauses the machine, exit fires while it is
	// still paused, carrying the full virtual pause the OS paid.
	KindSMIEnter
	KindSMIExit
)

// String names the kind for verdict details and traces.
func (k Kind) String() string {
	switch k {
	case KindExecWrite:
		return "exec-write"
	case KindCodeEpoch:
		return "code-epoch"
	case KindCacheFlush:
		return "cache-flush"
	case KindStep:
		return "step"
	case KindSMIEnter:
		return "smi-enter"
	case KindSMIExit:
		return "smi-exit"
	default:
		return "unknown"
	}
}

// Event is one typed introspection event. Seq is a per-channel
// strictly increasing sequence number assigned at emit time (gaps mean
// nothing; drops are counted, not numbered); At is the wall time of
// emission, the anchor for detection-latency measurement.
type Event struct {
	Seq   uint64
	Kind  Kind
	At    time.Time
	CPU   int           // emitting vCPU, -1 when not CPU-attributed
	Addr  uint64        // exec-write: first byte written
	Len   int           // exec-write: bytes written; step: instructions retired
	Epoch uint64        // code epoch after the event (write/epoch/flush kinds)
	Cmd   uint8         // SMI command (enter/exit kinds)
	Pause time.Duration // SMI exit: virtual OS pause this SMI cost
}

// Stats is a channel accounting snapshot. At quiescence (no emit in
// flight) Emitted == Delivered + Buffered + Dropped exactly; the fuzz
// target holds the channel to that identity under arbitrary
// interleavings of emits and receives.
type Stats struct {
	Emitted   uint64 // events offered to the channel
	Delivered uint64 // events handed to a receiver
	Dropped   uint64 // events discarded because the buffer was full
	Buffered  uint64 // events currently waiting
}

// DefaultCapacity is the event-buffer size used when a Config leaves
// Capacity zero — roomy enough that a patch rollout's own events never
// drop, small enough that a runaway producer degrades to counted drops
// instead of unbounded memory.
const DefaultCapacity = 1024

// Tap observes every event synchronously at emit time, before the
// buffered hand-off (and regardless of whether the buffer drops it).
// The adversary package uses taps as its deterministic scheduler: a
// strike keyed to the k-th SMI event runs at exactly the same point of
// every run with the same seed. A tap that itself performs
// instrumented operations (memory writes, SMIs) re-enters the channel;
// taps must guard against their own reentry.
type Tap func(Event)

// Channel is the bounded, drop-counting event channel. All methods are
// safe on a nil receiver (they do nothing), so producing layers hold
// an optional *Channel-shaped sink and call unconditionally.
type Channel struct {
	ch   chan Event
	wall timing.WallClock

	seq       atomic.Uint64
	emitted   atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	armed atomic.Bool
	tap   atomic.Pointer[Tap]
	obs   atomic.Pointer[obs.Hooks]
}

// NewChannel creates a channel holding at most capacity events
// (DefaultCapacity when <= 0). wall anchors event timestamps; nil uses
// the real clock.
func NewChannel(capacity int, wall timing.WallClock) *Channel {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if wall == nil {
		wall = timing.Real()
	}
	return &Channel{ch: make(chan Event, capacity), wall: wall}
}

// SetObserver installs (or, with nil, removes) observability hooks;
// emits and drops are counted under obs.CtrIntrospectEvents/Drops.
func (c *Channel) SetObserver(h *obs.Hooks) {
	if c == nil {
		return
	}
	if h == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(h)
}

// SetTap installs (or, with nil, removes) the synchronous tap.
func (c *Channel) SetTap(t Tap) {
	if c == nil {
		return
	}
	if t == nil {
		c.tap.Store(nil)
		return
	}
	c.tap.Store(&t)
}

// Arm enables (or disables) per-unit step events. Disarmed is the
// default: step events are the only high-rate kind, so they are opt-in
// per investigation, like single-stepping in sev-step.
func (c *Channel) Arm(on bool) {
	if c == nil {
		return
	}
	c.armed.Store(on)
}

// StepArmed reports whether per-unit step events are wanted; the
// execution layer checks it before paying for the emit.
func (c *Channel) StepArmed() bool { return c != nil && c.armed.Load() }

// Stats returns the accounting snapshot.
func (c *Channel) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Emitted:   c.emitted.Load(),
		Delivered: c.delivered.Load(),
		Dropped:   c.dropped.Load(),
		Buffered:  uint64(len(c.ch)),
	}
}

// TryRecv returns the oldest buffered event without blocking.
func (c *Channel) TryRecv() (Event, bool) {
	if c == nil {
		return Event{}, false
	}
	select {
	case ev := <-c.ch:
		c.delivered.Add(1)
		return ev, true
	default:
		return Event{}, false
	}
}

// Drain appends every currently buffered event to dst and returns it.
func (c *Channel) Drain(dst []Event) []Event {
	if c == nil {
		return dst
	}
	for {
		ev, ok := c.TryRecv()
		if !ok {
			return dst
		}
		dst = append(dst, ev)
	}
}

// emit stamps, taps, counts, and offers the event; a full buffer drops
// it (counted) rather than blocking the producer.
func (c *Channel) emit(ev Event) {
	if c == nil {
		return
	}
	ev.Seq = c.seq.Add(1)
	ev.At = c.wall.Now()
	if t := c.tap.Load(); t != nil {
		(*t)(ev)
	}
	c.emitted.Add(1)
	h := c.obs.Load()
	h.Count(obs.CtrIntrospectEvents, 1)
	select {
	case c.ch <- ev:
	default:
		c.dropped.Add(1)
		h.Count(obs.CtrIntrospectDrops, 1)
	}
}

// OnExecWrite implements mem.Introspector: a write landed in
// executable memory, bumping the code epoch to epoch.
func (c *Channel) OnExecWrite(addr uint64, n int, epoch uint64) {
	c.emit(Event{Kind: KindExecWrite, CPU: -1, Addr: addr, Len: n, Epoch: epoch})
}

// OnCodeEpoch implements mem.Introspector: the code epoch moved
// without byte attribution (SetPerms, snapshot Restore).
func (c *Channel) OnCodeEpoch(epoch uint64) {
	c.emit(Event{Kind: KindCodeEpoch, CPU: -1, Epoch: epoch})
}

// OnCacheFlush implements isa.IntrospectSink: a vCPU block engine
// discarded its predecoded cache at the given epoch.
func (c *Channel) OnCacheFlush(cpu int, epoch uint64) {
	c.emit(Event{Kind: KindCacheFlush, CPU: cpu, Epoch: epoch})
}

// OnStep implements isa.IntrospectSink: one dispatch unit retired.
// Emitted only while armed, mirroring the producer-side gate so a
// disarm between check and call stays harmless.
func (c *Channel) OnStep(cpu int, rip uint64, retired int) {
	if !c.StepArmed() {
		return
	}
	c.emit(Event{Kind: KindStep, CPU: cpu, Addr: rip, Len: retired})
}

// OnSMIEnter implements smm.Introspector: an SMI is about to pause the
// machine.
func (c *Channel) OnSMIEnter(cmd uint8) {
	c.emit(Event{Kind: KindSMIEnter, CPU: -1, Cmd: cmd})
}

// OnSMIExit implements smm.Introspector: the SMI handler finished;
// pause is the full virtual OS pause it cost. The machine is still
// paused when this fires.
func (c *Channel) OnSMIExit(cmd uint8, pause time.Duration) {
	c.emit(Event{Kind: KindSMIExit, CPU: -1, Cmd: cmd, Pause: pause})
}
