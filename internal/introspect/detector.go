// The Detector consumes the event channel and sweeps kernel text
// between SMIs. Its trust model is KShot's own: SMM is the root of
// trust, so writes into executable memory are legitimate exactly when
// they happen inside an SMI window, and a patch-processing SMI is
// legitimate exactly when the trusted pipeline announced it first
// (ExpectSMI). Everything else is classified into a typed verdict.

package introspect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// VerdictKind classifies one detection.
type VerdictKind uint8

const (
	// TamperDetected: kernel text changed outside any SMI window — an
	// exec-write event fired with the machine running, or the
	// frame-diff sweep found bytes no expected SMI wrote (the backstop
	// when the event itself was dropped).
	TamperDetected VerdictKind = iota + 1

	// StalePatchReplay: a patch-processing SMI fired that the trusted
	// pipeline never announced — the signature of an attacker
	// re-staging a captured patch artifact and raising the SMI itself.
	StalePatchReplay

	// ActivenessGroomed: the activeness check refused the same patch
	// too many consecutive times — the signature of an attacker
	// parking a vCPU inside the target to starve the patch out.
	ActivenessGroomed
)

// String names the verdict kind.
func (k VerdictKind) String() string {
	switch k {
	case TamperDetected:
		return "tamper-detected"
	case StalePatchReplay:
		return "stale-patch-replay"
	case ActivenessGroomed:
		return "activeness-groomed"
	default:
		return "unknown"
	}
}

// Verdict is one typed detection.
type Verdict struct {
	Kind   VerdictKind
	At     time.Time
	Detail string

	// TamperDetected evidence: the first suspicious write address (0
	// when only the frame diff caught it), the dirty frame base
	// addresses (empty when the baseline already absorbed the write),
	// and the event→detection latency (0 when no event survived).
	Addr    uint64
	Frames  []uint64
	Latency time.Duration
	Seq     uint64 // first evidencing event, 0 when none

	// StalePatchReplay evidence: the offending SMI command.
	Cmd uint8

	// ActivenessGroomed evidence: the starved patch.
	CVE string
}

// DetectorStats counts detector activity.
type DetectorStats struct {
	Sweeps     uint64
	Detections uint64
}

// DetectorConfig parameterizes a Detector. The zero value is usable.
type DetectorConfig struct {
	// PatchCmds are the SMI commands that legitimately modify kernel
	// text and therefore must be announced via ExpectSMI before they
	// fire. Core passes the process-package and process-batch
	// commands.
	PatchCmds []uint8

	// GroomThreshold is how many consecutive activeness refusals of
	// one patch raise ActivenessGroomed. <= 0 means
	// DefaultGroomThreshold.
	GroomThreshold int

	// Wall anchors verdict timestamps and latency measurement; nil
	// uses the real clock.
	Wall timing.WallClock
}

// DefaultGroomThreshold is the consecutive-refusal count that flags
// grooming: one refusal is normal contention, two a busy target; three
// in a row with no success in between is someone sitting on the
// function.
const DefaultGroomThreshold = 3

// Detector sweeps a window of physical memory (kernel text) against a
// last-known-good snapshot, classifying channel events and frame diffs
// into verdicts. All methods are safe on a nil receiver, so callers
// hold an optional *Detector and call unconditionally.
type Detector struct {
	ch    *Channel
	mem   *mem.Physical
	base  uint64
	size  uint64
	wall  timing.WallClock
	patch map[uint8]bool
	groom int

	mu       sync.Mutex
	good     *mem.Snapshot
	verdicts []Verdict
	expected map[uint8]int  // announced patch SMIs not yet observed
	refusals map[string]int // consecutive activeness refusals per CVE
	inSMI    bool           // event-stream SMI bracket, carried across sweeps
	windows  int            // open trusted SMI windows (Begin/EndTrustedWindow)
	scratch  []Event

	sweeps     atomic.Uint64
	detections atomic.Uint64
	obs        atomic.Pointer[obs.Hooks]

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewDetector creates a detector sweeping [base, base+size) of m
// against a baseline taken now. ch supplies the typed events (it may
// be nil: the detector then degrades to pure frame-diff sweeping).
func NewDetector(ch *Channel, m *mem.Physical, base, size uint64, cfg DetectorConfig) (*Detector, error) {
	if m == nil {
		return nil, fmt.Errorf("introspect: detector needs a memory to sweep")
	}
	wall := cfg.Wall
	if wall == nil {
		wall = timing.Real()
	}
	groom := cfg.GroomThreshold
	if groom <= 0 {
		groom = DefaultGroomThreshold
	}
	d := &Detector{
		ch:       ch,
		mem:      m,
		base:     base,
		size:     size,
		wall:     wall,
		patch:    make(map[uint8]bool, len(cfg.PatchCmds)),
		groom:    groom,
		good:     m.Snapshot(),
		expected: make(map[uint8]int),
		refusals: make(map[string]int),
	}
	for _, c := range cfg.PatchCmds {
		d.patch[c] = true
	}
	return d, nil
}

// SetObserver installs (or, with nil, removes) observability hooks;
// sweeps and detections land on obs.CtrIntrospectSweeps/Detections and
// detection latency on obs.HistDetectLatency.
func (d *Detector) SetObserver(h *obs.Hooks) {
	if d == nil {
		return
	}
	if h == nil {
		d.obs.Store(nil)
		return
	}
	d.obs.Store(h)
}

// Rebaseline re-snapshots the swept window as known-good. The trusted
// pipeline calls it after every successful patch or rollback SMI (and
// after an introspection repair), so the baseline tracks the text KShot
// itself produced. Pending events are NOT discarded: an attacker write
// racing the rebaseline is absorbed into the new snapshot, but its
// exec-write event still classifies as tampering on the next sweep —
// the event channel catches exactly what the diff can no longer see.
func (d *Detector) Rebaseline() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.good = d.mem.Snapshot()
	d.mu.Unlock()
}

// BeginTrustedWindow marks the start of a pipeline-initiated SMI that
// legitimately rewrites the swept text. While any trusted window is
// open, Sweep defers the frame-diff backstop — a concurrent sweep
// would otherwise indict the patch's own half-written bytes against
// the stale baseline — but keeps classifying events (the SMI bracket
// and replay detection are unaffected). Windows nest.
func (d *Detector) BeginTrustedWindow() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.windows++
	d.mu.Unlock()
}

// EndTrustedWindow closes a trusted window and atomically re-snapshots
// the swept range as known-good, so no sweep can ever diff the
// window's text changes against the pre-window baseline. Like
// Rebaseline, it does NOT discard pending events: an attacker write
// racing the window is absorbed into the snapshot but still classifies
// by its exec-write event on the next sweep.
func (d *Detector) EndTrustedWindow() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.windows > 0 {
		d.windows--
	}
	d.good = d.mem.Snapshot()
	d.mu.Unlock()
}

// ExpectSMI announces one upcoming patch-processing SMI as
// pipeline-initiated. Sweep consumes announcements in order; a patch
// SMI with no outstanding announcement is a replay.
func (d *Detector) ExpectSMI(cmd uint8) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.expected[cmd]++
	d.mu.Unlock()
}

// NoteActiveRefusal records one activeness refusal of the given patch;
// the threshold'th consecutive refusal raises ActivenessGroomed and
// resets the streak.
func (d *Detector) NoteActiveRefusal(cve string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.refusals[cve]++
	if d.refusals[cve] >= d.groom {
		d.refusals[cve] = 0
		d.raiseLocked(Verdict{
			Kind:   ActivenessGroomed,
			CVE:    cve,
			Detail: fmt.Sprintf("%d consecutive activeness refusals for %s", d.groom, cve),
		})
	}
}

// NoteApplied records a successful apply or rollback of the given
// patch, ending any refusal streak.
func (d *Detector) NoteApplied(cve string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	delete(d.refusals, cve)
	d.mu.Unlock()
}

// Verdicts returns a copy of every verdict raised so far.
func (d *Detector) Verdicts() []Verdict {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Verdict, len(d.verdicts))
	copy(out, d.verdicts)
	return out
}

// TakeVerdicts returns every verdict raised so far and clears the
// list — the per-cycle harvest of a seeded campaign.
func (d *Detector) TakeVerdicts() []Verdict {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.verdicts
	d.verdicts = nil
	return out
}

// Stats returns sweep/detection counts.
func (d *Detector) Stats() DetectorStats {
	if d == nil {
		return DetectorStats{}
	}
	return DetectorStats{Sweeps: d.sweeps.Load(), Detections: d.detections.Load()}
}

// raiseLocked appends a verdict (d.mu held) and counts it.
func (d *Detector) raiseLocked(v Verdict) {
	v.At = d.wall.Now()
	d.verdicts = append(d.verdicts, v)
	d.detections.Add(1)
	h := d.obs.Load()
	h.Count(obs.CtrIntrospectDetections, 1)
	if v.Kind == TamperDetected && v.Latency > 0 {
		h.ObserveDur(obs.HistDetectLatency, v.Latency)
	}
}

// Sweep drains the event channel, classifies the events, and
// frame-diffs the swept window against the last-known-good snapshot.
// It returns the verdicts this sweep raised. Call it between SMIs
// (manually, or via Start's background loop); the event-stream SMI
// bracket carries across calls, so sweeping concurrently with an SMI
// in flight stays sound.
func (d *Detector) Sweep() []Verdict {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sweeps.Add(1)
	d.obs.Load().Count(obs.CtrIntrospectSweeps, 1)

	before := len(d.verdicts)

	// Classify the pending events in order. The channel is FIFO and
	// producers emit in causal order, so the inSMI bracket reconstructs
	// whether each exec-write happened under SMM.
	var suspect *Event // earliest out-of-window exec write
	d.scratch = d.ch.Drain(d.scratch[:0])
	for i := range d.scratch {
		ev := &d.scratch[i]
		switch ev.Kind {
		case KindSMIEnter:
			d.inSMI = true
			if d.patch[ev.Cmd] {
				if d.expected[ev.Cmd] > 0 {
					d.expected[ev.Cmd]--
				} else {
					d.raiseLocked(Verdict{
						Kind:   StalePatchReplay,
						Cmd:    ev.Cmd,
						Seq:    ev.Seq,
						Detail: fmt.Sprintf("unannounced patch SMI %#02x", ev.Cmd),
					})
				}
			}
		case KindSMIExit:
			d.inSMI = false
		case KindExecWrite:
			in := ev.Addr >= d.base && ev.Addr < d.base+d.size
			if in && !d.inSMI && suspect == nil {
				suspect = ev
			}
		}
	}

	// Frame-diff backstop: bytes that differ from the baseline were
	// written by something other than an expected, rebaselined SMI —
	// this fires even when the exec-write event itself was dropped.
	// Deferred while a trusted SMI window is open: the window's own
	// writes are legitimate and EndTrustedWindow rebaselines before
	// the diff is next consulted.
	var frames []uint64
	if d.windows == 0 {
		idxs, err := d.mem.DiffFramesIn(d.good, d.base, d.size)
		if err != nil {
			idxs = nil // foreign snapshot after an external Restore; events still classify
		}
		frames = make([]uint64, len(idxs))
		for i, ix := range idxs {
			frames[i] = mem.FrameAddr(ix)
		}
	}
	if suspect != nil || len(frames) > 0 {
		v := Verdict{Kind: TamperDetected, Frames: frames}
		if suspect != nil {
			v.Addr = suspect.Addr
			v.Seq = suspect.Seq
			v.Latency = d.wall.Now().Sub(suspect.At)
			v.Detail = fmt.Sprintf("exec write at %#x outside SMI window (%d dirty frames)", suspect.Addr, len(frames))
		} else {
			v.Detail = fmt.Sprintf("%d kernel.text frames differ from baseline (event dropped or silent)", len(frames))
		}
		d.raiseLocked(v)
		// Absorb the tamper into the baseline so one incident yields
		// one verdict, not one per sweep. Repair is SMM's job
		// (CmdIntrospect); detection's job is done.
		d.good = d.mem.Snapshot()
	}

	if len(d.verdicts) == before {
		return nil
	}
	out := make([]Verdict, len(d.verdicts)-before)
	copy(out, d.verdicts[before:])
	return out
}

// Start launches a background sweep loop with the given period,
// stopping when Stop is called. A second Start replaces the loop.
func (d *Detector) Start(period time.Duration) {
	if d == nil || period <= 0 {
		return
	}
	d.loopMu.Lock()
	defer d.loopMu.Unlock()
	d.stopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	d.stop, d.done = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				d.Sweep()
			}
		}
	}()
}

// Stop halts the background sweep loop, if any, and waits for it.
func (d *Detector) Stop() {
	if d == nil {
		return
	}
	d.loopMu.Lock()
	defer d.loopMu.Unlock()
	d.stopLocked()
}

func (d *Detector) stopLocked() {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop, d.done = nil, nil
	}
}
