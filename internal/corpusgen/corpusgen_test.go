package corpusgen

import (
	"reflect"
	"strings"
	"testing"

	"kshot/internal/kernel"
)

// buildCase assembles and links both variants of a case under the
// case's own build config, failing the test on any build error.
func buildCase(t testing.TB, c *Case) {
	t.Helper()
	for _, variant := range []struct {
		name, src string
	}{{"vuln", c.Vuln}, {"fixed", c.Fixed}} {
		st, err := kernel.BaseTreeWithConfig(kernel.BuildConfig{
			Version: c.Version, Ftrace: c.Ftrace, Inline: c.Inline,
		})
		if err != nil {
			t.Fatalf("%s: base tree: %v", c.ID, err)
		}
		st.AddFile(c.File, variant.src)
		if _, _, err := st.Build(); err != nil {
			t.Fatalf("%s (%s, arch %s): build %s variant: %v", c.ID, c.Version, c.Archetype, variant.name, err)
		}
	}
}

func TestGenCaseDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		a, b := GenCase(seed), GenCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %#x: two GenCase calls differ", seed)
		}
		if a.Vuln != b.Vuln || a.Fixed != b.Fixed {
			t.Fatalf("seed %#x: generated sources not byte-identical", seed)
		}
	}
}

func TestGenerateManifestDeterministic(t *testing.T) {
	cfg := Config{Seed: 0xC0FFEE, Count: 128}
	m1 := Manifest(Generate(cfg))
	m2 := Manifest(Generate(cfg))
	if m1 != m2 {
		t.Fatal("same Config produced different manifests")
	}
	if n := strings.Count(m1, "\n"); n != cfg.Count {
		t.Fatalf("manifest has %d lines, want %d", n, cfg.Count)
	}
}

func TestGenerateCoversAllArchetypesAndConfigs(t *testing.T) {
	cases := Generate(Config{Seed: 1, Count: 256})
	arch := map[string]int{}
	configs := map[string]int{}
	for _, c := range cases {
		arch[c.Archetype]++
		configs[c.Version+"/"+c.Expect.TypesString()]++
		if len(c.Expect.Funcs) == 0 {
			t.Fatalf("%s: empty expectation", c.ID)
		}
		if c.Vuln == c.Fixed {
			t.Fatalf("%s: vulnerable and fixed variants identical", c.ID)
		}
		// Every predicted function name must appear in the fixed source
		// (new functions only exist there).
		for fn := range c.Expect.Funcs {
			if !strings.Contains(c.Fixed, fn) {
				t.Fatalf("%s: predicted function %s not in fixed source", c.ID, fn)
			}
		}
	}
	for _, a := range Archetypes {
		if arch[a] == 0 {
			t.Errorf("256-case corpus never produced archetype %s", a)
		}
	}
	if len(configs) < 4 {
		t.Errorf("corpus covers only %d version/type combinations: %v", len(configs), configs)
	}
}

func TestCaseSeedStable(t *testing.T) {
	// Frozen values: the seed→case mapping is part of the package
	// contract (divergence reports quote seeds; they must keep
	// regenerating the same case forever).
	if got := CaseSeed(0, 0); got != 0x6393d51c06c618dc {
		t.Fatalf("CaseSeed(0,0) = %#x", got)
	}
}

func TestGeneratedCasesBuild(t *testing.T) {
	for _, c := range Generate(Config{Seed: 42, Count: 48}) {
		buildCase(t, c)
	}
}

func TestEntryAdapter(t *testing.T) {
	c := GenCase(7)
	e := c.Entry()
	if e.CVE != c.ID || e.File != c.File || e.Vuln != c.Vuln || e.Fixed != c.Fixed {
		t.Fatal("Entry does not mirror the case")
	}
	if e.Exploit == nil {
		t.Fatal("Entry has no exploit probe")
	}
	if len(e.Functions) != len(c.Expect.Funcs) {
		t.Fatalf("Entry.Functions = %v, want the %d predicted functions", e.Functions, len(c.Expect.Funcs))
	}
	if len(e.Types) != len(c.Expect.Types) {
		t.Fatalf("Entry.Types = %v, want %v", e.Types, c.Expect.Types)
	}
}

// FuzzCorpusCase asserts the generator's two invariants for arbitrary
// seeds: regeneration is byte-identical, and both variants of every
// case build under the case's own kernel configuration.
func FuzzCorpusCase(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0))
	f.Add(uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := GenCase(seed), GenCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %#x: regeneration differs", seed)
		}
		buildCase(t, a)
	})
}
