// Package corpusgen procedurally generates synthetic CVE cases — the
// scenario pool behind the differential verification sweeps. Each case
// is a (kernel variant × vulnerability) pair: a build configuration
// (version, ftrace on/off, inlining on/off), a vulnerable subsystem
// source file, its fix, and an up-front prediction of exactly which
// functions the patch pipeline must patch, with which Type 1/2/3
// classification, whether each carries an ftrace prologue, and which
// new globals the fix allocates.
//
// Everything is a pure function of a single uint64 seed: GenCase(seed)
// returns byte-identical output on every run, on every platform, so a
// failing case IS its seed — "shrinking" a corpus failure means
// regenerating one case from the seed a divergence report names. The
// generator varies build config, function size (padding), global-data
// layout (extra globals of mixed sizes), and call-graph shape (fan-in
// validator sites, fan-out to notrace leaves, bounded recursion,
// filler functions after the changed code so unchanged functions land
// at shifted addresses).
//
// The prediction model mirrors internal/patch's pipeline: a function
// is Type 3 when it references an edited global, else Type 1 when its
// source changed (or it is new), else Type 2 (implicated only through
// compiler inlining). Inline-marked helpers flip between Type 2
// (inlining on: the fix lands at every call site) and Type 1 (inlining
// off: the helper is a standalone patch target) — the prediction is
// config-sensitive, and the differential harness in internal/evalharness
// checks it against the live pipeline case by case.
package corpusgen

import (
	"fmt"
	"sort"
	"strings"

	"kshot/internal/patch"
)

// Archetype names, one per vulnerability/patch shape the generator
// emits. Exposed so sweep reports can bucket results.
const (
	ArchBounds    = "bounds"    // missing bounds check, Type 1
	ArchLeak      = "leak"      // crafted-request info leak, Type 1
	ArchValidator = "validator" // inline validator, Type 2 (inline on) / Type 1 (off)
	ArchChain     = "chain"     // depth-2 inline chain, Type 2 / Type 1
	ArchCached    = "cached"    // struct-extension cached global, Type 3
	ArchNewFn     = "newfn"     // fix adds a new function, Type 1 + new payload
	ArchRecFix    = "recfix"    // notrace recursive function fixed in place, Type 1
	ArchCombo12   = "combo12"   // bounds + validator, Types 1,2 (inline on)
	ArchCombo13   = "combo13"   // bounds + cached, Types 1,3
)

// Archetypes lists every archetype in generation order.
var Archetypes = []string{
	ArchBounds, ArchLeak, ArchValidator, ArchChain, ArchCached,
	ArchNewFn, ArchRecFix, ArchCombo12, ArchCombo13,
}

// FuncExpect is the generator's prediction for one patched function.
type FuncExpect struct {
	// Type is the expected Table I classification.
	Type patch.Type

	// New marks a function the fix adds (shipped as a new payload, no
	// trampoline).
	New bool

	// Traced predicts whether the function carries the 5-byte ftrace
	// prologue in the running kernel, which moves the trampoline site
	// from the entry to entry+5.
	Traced bool
}

// Expectation is the generator's ground truth for one case: the exact
// patched-function set the pipeline must produce, plus the new globals
// the fix allocates.
type Expectation struct {
	// Funcs maps every function the patch must touch to its prediction.
	Funcs map[string]FuncExpect

	// NewGlobals are the names of globals the fix adds, sorted.
	NewGlobals []string

	// Types are the distinct expected patch types, ascending — what
	// BinaryPatch.Types() must report.
	Types []patch.Type
}

// FuncNames returns the expected patched-function names, sorted.
func (e *Expectation) FuncNames() []string {
	out := make([]string, 0, len(e.Funcs))
	for n := range e.Funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TypesString renders the expected classification like Table I ("1,2").
func (e *Expectation) TypesString() string {
	parts := make([]string, len(e.Types))
	for i, t := range e.Types {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// Case is one generated (kernel variant × synthetic CVE) scenario.
type Case struct {
	// Seed reproduces the case: GenCase(Seed) rebuilds it bit for bit.
	Seed uint64

	// ID is the case identifier ("GEN-<seed hex>"), used as the patch
	// ID end to end.
	ID string

	// Archetype names the vulnerability/patch shape.
	Archetype string

	// Version, Ftrace, Inline are the kernel build configuration the
	// case targets.
	Version string
	Ftrace  bool
	Inline  bool

	// File is the subsystem source path the case contributes; Vuln and
	// Fixed are the pre-/post-patch contents.
	File  string
	Vuln  string
	Fixed string

	// Expect is the generator's prediction of what the patch pipeline
	// must produce for this case.
	Expect Expectation
}

// GenCase deterministically generates the case for one seed. Two calls
// with the same seed return byte-identical cases; nothing outside the
// seed (time, map order, global state) influences the output.
func GenCase(seed uint64) *Case {
	r := &rng{s: mix64(seed)}
	c := &Case{
		Seed: seed,
		ID:   fmt.Sprintf("GEN-%016X", seed),
		File: fmt.Sprintf("cve/gen_%016x.asm", seed),
	}
	if r.flag() {
		c.Version = "4.4"
	} else {
		c.Version = "3.14"
	}
	c.Ftrace = r.flag()
	c.Inline = r.flag()
	c.Archetype = Archetypes[r.intn(len(Archetypes))]
	c.Expect.Funcs = make(map[string]FuncExpect)

	em := &emitter{c: c, r: r, p: fmt.Sprintf("g%016x_", seed)}
	em.emit()

	c.Vuln = em.vuln.String()
	c.Fixed = em.fixed.String()
	sort.Strings(c.Expect.NewGlobals)
	c.Expect.Types = distinctTypes(c.Expect.Funcs)
	return c
}

// Config parameterizes Generate.
type Config struct {
	// Seed is the corpus master seed; per-case seeds derive from it.
	Seed uint64

	// Count is the number of cases to generate.
	Count int
}

// CaseSeed derives the i-th case's seed from the corpus master seed.
// Divergence reports carry this value so one failing case can be
// regenerated without its corpus.
func CaseSeed(master uint64, i int) uint64 {
	return mix64(master ^ mix64(uint64(i)+0x9E3779B97F4A7C15))
}

// Generate emits cfg.Count cases from the master seed, in order. The
// result is fully deterministic: same Config, same corpus, bit for bit.
func Generate(cfg Config) []*Case {
	out := make([]*Case, cfg.Count)
	for i := range out {
		out[i] = GenCase(CaseSeed(cfg.Seed, i))
	}
	return out
}

// Manifest renders a deterministic one-line-per-case summary of a
// corpus — the byte-identity witness for "same seed ⇒ same corpus"
// checks (hash it, diff it, commit it).
func Manifest(cases []*Case) string {
	var b strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&b, "%s seed=%#016x arch=%s version=%s ftrace=%v inline=%v types=%s funcs=%s vuln=%dB fixed=%dB\n",
			c.ID, c.Seed, c.Archetype, c.Version, c.Ftrace, c.Inline,
			c.Expect.TypesString(), strings.Join(c.Expect.FuncNames(), ","),
			len(c.Vuln), len(c.Fixed))
	}
	return b.String()
}

func distinctTypes(funcs map[string]FuncExpect) []patch.Type {
	seen := map[patch.Type]bool{}
	for _, fe := range funcs {
		seen[fe.Type] = true
	}
	var out []patch.Type
	for _, t := range []patch.Type{patch.Type1, patch.Type2, patch.Type3} {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Deterministic RNG — splitmix64, seeded from the case seed. Not
// math/rand: the stream must be stable across Go versions and
// platforms for seeds to stay reproducible forever.
// ---------------------------------------------------------------------------

type rng struct{ s uint64 }

// mix64 is the splitmix64 finalizer, used both for seed derivation and
// stream initialization.
func mix64(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 33
	z *= 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return z
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4B9B1
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) flag() bool { return r.next()&1 == 1 }
