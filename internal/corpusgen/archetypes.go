package corpusgen

import (
	"fmt"
	"strings"

	"kshot/internal/patch"
)

// emitter accumulates the vulnerable and fixed source texts for one
// case while recording the expectation. All randomness is drawn from
// the case rng in a fixed order, so emission is deterministic.
type emitter struct {
	c *Case
	r *rng
	p string // unique per-case symbol prefix ("g<seed hex>_")

	vuln, fixed strings.Builder
}

// both appends text present identically in the vulnerable and fixed
// variants; diff appends variant-specific text.
func (em *emitter) both(s string)    { em.vuln.WriteString(s); em.fixed.WriteString(s) }
func (em *emitter) diff(v, f string) { em.vuln.WriteString(v); em.fixed.WriteString(f) }

// expect records the prediction for one patched function. traceable
// says whether the function would carry an ftrace prologue when the
// build has tracing on (i.e. it is not marked notrace); new payloads
// never report Traced because they have no counterpart in the running
// kernel.
func (em *emitter) expect(name string, t patch.Type, isNew, traceable bool) {
	em.c.Expect.Funcs[name] = FuncExpect{
		Type:   t,
		New:    isNew,
		Traced: !isNew && em.c.Ftrace && traceable,
	}
}

// pad emits n filler instructions, varying function size (and
// therefore payload bytes and every later symbol's address).
func pad(n int) string {
	if n <= 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("    addi r9, 1\n")
	}
	return b.String()
}

// emit builds the whole case: header, data-layout noise, the archetype
// functions, then address-shifting fillers and shared call-graph
// helpers (a notrace leaf and a bounded-recursion function).
func (em *emitter) emit() {
	c := em.c
	em.both(fmt.Sprintf("; %s — generated case (archetype %s, seed %#016x)\n", c.ID, c.Archetype, c.Seed))

	// Global-data layout noise: 0–3 extra globals of mixed sizes,
	// identical in both variants, shifting the data segment around the
	// archetype's own globals.
	sizes := []int{8, 16, 32, 64}
	for i, n := 0, em.r.intn(4); i < n; i++ {
		em.both(fmt.Sprintf(".global %spad%d %d\n", em.p, i, sizes[em.r.intn(len(sizes))]))
	}

	helpersFirst := em.r.flag()
	if helpersFirst {
		em.helpers()
	}

	switch c.Archetype {
	case ArchBounds:
		em.boundsFunc(em.p+"nwrite", em.r.flag(), em.r.flag(), em.r.intn(24))
	case ArchLeak:
		em.leakFunc(em.p+"report", em.r.flag(), em.r.intn(24))
	case ArchValidator:
		em.validator(1, 1+em.r.intn(3), em.r.intn(12))
	case ArchChain:
		em.validator(2, 1+em.r.intn(3), em.r.intn(12))
	case ArchCached:
		em.cached(em.r.intn(16))
	case ArchNewFn:
		em.newFn(em.r.flag(), em.r.intn(20))
	case ArchRecFix:
		em.recFix(em.r.intn(12))
	case ArchCombo12:
		em.boundsFunc(em.p+"nwrite", em.r.flag(), em.r.flag(), em.r.intn(16))
		em.validator(1, 1+em.r.intn(2), em.r.intn(8))
	case ArchCombo13:
		em.boundsFunc(em.p+"nwrite", em.r.flag(), em.r.flag(), em.r.intn(16))
		em.cached(em.r.intn(12))
	}

	// Filler functions AFTER the changed code: their bytes are
	// identical in both builds but their addresses shift whenever the
	// fix changes an earlier function's size — the
	// identical-bytes-at-different-addresses case binary matching must
	// not flag.
	for i, n := 0, em.r.intn(4); i < n; i++ {
		em.both(fmt.Sprintf("\n.func %sfill%d\n%s    movi r0, %d\n    ret\n.endfunc\n",
			em.p, i, pad(1+em.r.intn(20)), i+1))
	}
	if !helpersFirst {
		em.helpers()
	}
}

// helpers emits the shared call-graph shape: a notrace leaf the
// archetypes can fan out to, and a self-recursive (never patched)
// function so the kernel's call graph contains a cycle.
func (em *emitter) helpers() {
	em.both(fmt.Sprintf(`
.func %[1]sleaf notrace       ; (x) -> x+3
    addi r1, 3
    mov r0, r1
    ret
.endfunc

.func %[1]srecur              ; (n) -> n + (n-1) + ... + 0
    cmpi r1, 0
    jnz .more
    movi r0, 0
    ret
.more:
    push r1
    subi r1, 1
    call %[1]srecur
    pop r1
    add r0, r1
    ret
.endfunc
`, em.p))
}

// boundsFunc is the Type 1 missing-bounds-check archetype: the
// function writes an attacker-indexed slot of an 8-word buffer, and
// only the fixed variant rejects indexes past the end (index 8 lands
// on the adjacent canary). Optionally notrace (moving the trampoline
// to the function entry) and optionally fanning out to the leaf
// helper.
func (em *emitter) boundsFunc(fn string, notrace, callLeaf bool, padN int) {
	attr := ""
	if notrace {
		attr = " notrace"
	}
	pre := ""
	if callLeaf {
		pre = "    push r1\n    mov r1, r2\n    call " + em.p + "leaf\n    mov r2, r0\n    pop r1\n"
	}
	check := "    cmpi r1, 8\n    jl .inbounds\n    movi r0, 14\n    ret\n.inbounds:\n"
	body := func(chk string) string {
		return fmt.Sprintf(`
.global %[1]s_buf 64
.data   %[1]s_canary 37 13 00 00 00 00 00 00

.func %[1]s%[2]s              ; (idx, val) -> 0 ok / 14 EFAULT
%[3]s%[4]s    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
%[5]s    movi r0, 0
    ret
.endfunc
`, fn, attr, pre, chk, pad(padN))
	}
	em.diff(body(""), body(check))
	em.expect(fn, patch.Type1, false, !notrace)
}

// leakFunc is the Type 1 information-leak archetype: a crafted request
// (0xdead) reads out a secret global until the fix closes the debug
// path.
func (em *emitter) leakFunc(fn string, notrace bool, padN int) {
	attr := ""
	if notrace {
		attr = " notrace"
	}
	check := "    cmpi r1, 57005\n    jnz .serve\n    movi r0, 0\n    ret\n.serve:\n"
	body := func(chk string) string {
		return fmt.Sprintf(`
.data %[1]s_secret 5a a5 5a a5 00 00 00 00

.func %[1]s%[2]s              ; (req) -> per-request data
%[3]s    cmpi r1, 57005        ; 0xdead: internal debug path
    jnz .normal
    loadg r0, %[1]s_secret
    ret
.normal:
%[4]s    mov r0, r1
    addi r0, 1
    ret
.endfunc
`, fn, attr, chk, pad(padN))
	}
	em.diff(body(""), body(check))
	em.expect(fn, patch.Type1, false, !notrace)
}

// validator is the inlining archetype: an inline validator (depth 1)
// or an inline validator delegating to an inline inner check (depth 2)
// whose fix implicates every call site when the build inlines — the
// classification flips with the build config:
//
//   - inlining on:  the changed helper emits no symbol; every site is
//     patched as Type 2;
//   - inlining off: the changed helper is a standalone Type 1 target
//     and the sites stay untouched.
func (em *emitter) validator(depth, sites, padN int) {
	v := em.p + "valid"
	changed := v
	vulnBody := "    movi r0, 1\n"
	fixedBody := "    movi r0, 0\n    cmpi r1, 8\n    jge .end\n    movi r0, 1\n.end:\n"
	if depth == 2 {
		inner := em.p + "inner"
		changed = inner
		fn := func(body string) string {
			return fmt.Sprintf("\n.func %s inline       ; (len) -> 1 valid / 0 invalid\n%s%s    ret\n.endfunc\n",
				inner, body, pad(padN))
		}
		em.diff(fn(vulnBody), fn(fixedBody))
		em.both(fmt.Sprintf("\n.func %s inline       ; (len) -> inner verdict\n    call %s\n    ret\n.endfunc\n", v, inner))
	} else {
		fn := func(body string) string {
			return fmt.Sprintf("\n.func %s inline       ; (len) -> 1 valid / 0 invalid\n%s%s    ret\n.endfunc\n",
				v, body, pad(padN))
		}
		em.diff(fn(vulnBody), fn(fixedBody))
	}

	em.both(fmt.Sprintf("\n.global %[1]s_buf 64\n.data   %[1]s_canary 37 13 00 00 00 00 00 00\n", v))
	for i := 1; i <= sites; i++ {
		em.both(fmt.Sprintf(`
.func %[1]s_site%[2]d         ; (len, val) -> 0 ok / 14 EFAULT
    push r1
    call %[1]s
    pop r1
    cmpi r0, 0
    jnz .write
    movi r0, 14
    ret
.write:
    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
    movi r0, 0
    ret
.endfunc
`, v, i))
	}

	if em.c.Inline {
		for i := 1; i <= sites; i++ {
			em.expect(fmt.Sprintf("%s_site%d", v, i), patch.Type2, false, true)
		}
	} else {
		em.expect(changed, patch.Type1, false, true)
	}
}

// cached is the Type 3 struct-extension archetype: the fix adds a new
// global (the cached field), an initializer that populates it, and a
// clamp in the consumer — both patched functions reference the edited
// global, so both classify as Type 3.
func (em *emitter) cached(padN int) {
	base := em.p + "state"
	consumer := em.p + "consume"
	initFn := em.p + "initcache"
	em.diff("", fmt.Sprintf("\n.data %s_cached 00 01 00 00 00 00 00 00\n", base)) // 256

	clamp := fmt.Sprintf("    loadg r2, %s_cached\n    cmp r0, r2\n    jle .fine\n    mov r0, r2\n.fine:\n", base)
	cBody := func(cl string) string {
		return fmt.Sprintf("\n.func %s              ; (v) -> sanitized v\n    mov r0, r1\n    add r0, r1\n%s%s    ret\n.endfunc\n",
			consumer, cl, pad(padN))
	}
	em.diff(cBody(""), cBody(clamp))

	iBody := func(store string) string {
		return fmt.Sprintf("\n.func %s              ; initialize cached state\n%s%s    ret\n.endfunc\n",
			initFn, store, pad(padN))
	}
	em.diff(iBody("    movi r0, 0\n"), iBody(fmt.Sprintf("    movi r0, 256\n    storeg %s_cached, r0\n", base)))

	em.c.Expect.NewGlobals = append(em.c.Expect.NewGlobals, base+"_cached")
	em.expect(consumer, patch.Type3, false, true)
	em.expect(initFn, patch.Type3, false, true)
}

// newFn is the added-function archetype: the fix routes the vulnerable
// write through a brand-new check function, which ships as a new
// payload (no trampoline) alongside the Type 1 patch to the caller.
func (em *emitter) newFn(notraceCheck bool, padN int) {
	fn := em.p + "ioctl"
	chk := em.p + "check"
	attr := ""
	if notraceCheck {
		attr = " notrace"
	}
	storeBody := fmt.Sprintf(`    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
%[2]s    movi r0, 0
    ret
`, fn, pad(padN))
	head := fmt.Sprintf("\n.global %[1]s_buf 64\n.data   %[1]s_canary 37 13 00 00 00 00 00 00\n", fn)
	vuln := fmt.Sprintf("%s\n.func %s              ; (idx, val) -> 0 ok / 14 EFAULT\n%s.endfunc\n", head, fn, storeBody)
	fixed := fmt.Sprintf(`%s
.func %[2]s              ; (idx, val) -> 0 ok / 14 EFAULT
    call %[3]s
    cmpi r0, 0
    jnz .ok
    movi r0, 14
    ret
.ok:
%[4]s.endfunc

.func %[3]s%[5]s          ; (idx) -> 1 in bounds / 0 out
    cmpi r1, 8
    jl .y
    movi r0, 0
    ret
.y:
    movi r0, 1
    ret
.endfunc
`, head, fn, chk, storeBody, attr)
	em.diff(vuln, fixed)
	em.expect(fn, patch.Type1, false, true)
	em.expect(chk, patch.Type1, true, false)
}

// recFix is the recursive-function archetype: a notrace function that
// writes a slot then recurses toward zero; the fix bounds the index.
// notrace is load-bearing — a traced recursive function cannot be
// patched in place, because its self-call would target the stripped
// ftrace prologue (the pipeline rejects that payload).
func (em *emitter) recFix(padN int) {
	fn := em.p + "recwrite"
	check := "    cmpi r1, 8\n    jl .ok\n    movi r0, 14\n    ret\n.ok:\n"
	body := func(chk string) string {
		return fmt.Sprintf(`
.global %[1]s_buf 64
.data   %[1]s_canary 37 13 00 00 00 00 00 00

.func %[1]s notrace           ; (idx, val) -> 0 ok / 14 EFAULT, fills idx..0
%[2]s    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
%[3]s    cmpi r1, 0
    jz .done
    subi r1, 1
    call %[1]s
.done:
    movi r0, 0
    ret
.endfunc
`, fn, chk, pad(padN))
	}
	em.diff(body(""), body(check))
	em.expect(fn, patch.Type1, false, false)
}
