package corpusgen

import (
	"fmt"
	"strings"

	"kshot/internal/cvebench"
	"kshot/internal/kernel"
	"kshot/internal/patch"
)

const (
	canaryMagic = 0x1337
	leakSecret  = 0xa55aa55a
)

// Entry adapts the case to a cvebench.Entry, so generated cases flow
// through every consumer built for the Table I corpus — the patch
// server's TreeProviderFor, the eval harness, the rollout waves — with
// the seed-derived ID standing in for the CVE number.
func (c *Case) Entry() *cvebench.Entry {
	return &cvebench.Entry{
		CVE:       c.ID,
		Functions: c.Expect.FuncNames(),
		SizeLoC:   strings.Count(c.Fixed, "\n"),
		Types:     append([]patch.Type(nil), c.Expect.Types...),
		File:      c.File,
		Vuln:      c.Vuln,
		Fixed:     c.Fixed,
		Exploit:   c.exploit(),
		Summary: fmt.Sprintf("generated %s case (seed %#016x, %s ftrace=%v inline=%v)",
			c.Archetype, c.Seed, c.Version, c.Ftrace, c.Inline),
	}
}

// prefix reconstructs the per-case symbol prefix GenCase used.
func (c *Case) prefix() string { return fmt.Sprintf("g%016x_", c.Seed) }

// exploit builds the case's probe from its archetype. Combos probe
// every constituent vulnerability: the kernel counts as vulnerable
// while any probe still succeeds.
func (c *Case) exploit() cvebench.ExploitFunc {
	p := c.prefix()
	var probes []cvebench.ExploitFunc
	switch c.Archetype {
	case ArchBounds:
		probes = append(probes, canaryProbe(p+"nwrite", p+"nwrite"))
	case ArchLeak:
		probes = append(probes, leakProbe(p+"report"))
	case ArchValidator, ArchChain:
		probes = append(probes, canaryProbe(p+"valid_site1", p+"valid"))
	case ArchCached:
		probes = append(probes, clampProbe(p+"consume", p+"initcache"))
	case ArchNewFn:
		probes = append(probes, canaryProbe(p+"ioctl", p+"ioctl"))
	case ArchRecFix:
		probes = append(probes, canaryProbe(p+"recwrite", p+"recwrite"))
	case ArchCombo12:
		probes = append(probes,
			canaryProbe(p+"nwrite", p+"nwrite"),
			canaryProbe(p+"valid_site1", p+"valid"))
	case ArchCombo13:
		probes = append(probes,
			canaryProbe(p+"nwrite", p+"nwrite"),
			clampProbe(p+"consume", p+"initcache"))
	}
	return allProbes(probes)
}

// canaryProbe writes one word past callee's 8-word buffer and checks
// whether the adjacent canary (named after base) survived.
func canaryProbe(callee, base string) cvebench.ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (cvebench.ExploitResult, error) {
		if err := k.WriteGlobal(base+"_canary", canaryMagic); err != nil {
			return cvebench.ExploitResult{}, err
		}
		if _, err := k.Call(vcpu, callee, 8, 0x6666); err != nil {
			return cvebench.ExploitResult{}, fmt.Errorf("probe call %s: %w", callee, err)
		}
		v, err := k.ReadGlobal(base + "_canary")
		if err != nil {
			return cvebench.ExploitResult{}, err
		}
		if v != canaryMagic {
			return cvebench.ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("out-of-bounds write through %s clobbered %s_canary (now %#x)", callee, base, v)}, nil
		}
		return cvebench.ExploitResult{Detail: callee + " rejects out-of-bounds write"}, nil
	}
}

// leakProbe sends the crafted debug request and checks whether the
// secret came back.
func leakProbe(fn string) cvebench.ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (cvebench.ExploitResult, error) {
		v, err := k.Call(vcpu, fn, 0xdead)
		if err != nil {
			return cvebench.ExploitResult{}, fmt.Errorf("probe call %s: %w", fn, err)
		}
		if v == leakSecret {
			return cvebench.ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("%s leaked secret %#x", fn, v)}, nil
		}
		return cvebench.ExploitResult{Detail: fn + " debug path closed"}, nil
	}
}

// clampProbe runs the initializer then feeds the consumer an oversized
// value; the fixed kernel clamps it to the cached limit (256).
func clampProbe(consumer, initFn string) cvebench.ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (cvebench.ExploitResult, error) {
		if _, err := k.Call(vcpu, initFn); err != nil {
			return cvebench.ExploitResult{}, fmt.Errorf("probe call %s: %w", initFn, err)
		}
		v, err := k.Call(vcpu, consumer, 100000)
		if err != nil {
			return cvebench.ExploitResult{}, fmt.Errorf("probe call %s: %w", consumer, err)
		}
		if v > 256 {
			return cvebench.ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("%s passed oversized value %d through unclamped", consumer, v)}, nil
		}
		return cvebench.ExploitResult{Detail: fmt.Sprintf("%s clamps to cached limit (%d)", consumer, v)}, nil
	}
}

// allProbes reports vulnerable while ANY probe still succeeds.
func allProbes(probes []cvebench.ExploitFunc) cvebench.ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (cvebench.ExploitResult, error) {
		var details []string
		vulnerable := false
		for _, p := range probes {
			r, err := p(k, vcpu)
			if err != nil {
				return cvebench.ExploitResult{}, err
			}
			vulnerable = vulnerable || r.Vulnerable
			details = append(details, r.Detail)
		}
		return cvebench.ExploitResult{Vulnerable: vulnerable, Detail: strings.Join(details, "; ")}, nil
	}
}
