package baseline

import (
	"fmt"

	"kshot/internal/isa"
	"kshot/internal/kernel"
	"kshot/internal/timing"
)

// KARMAMaxPayload is the per-function payload budget of the
// instruction-level patcher: KARMA targets small fixes applied by a
// kernel module; large function rewrites are out of scope (§VII-C:
// "can update new components if the patch is small").
const KARMAMaxPayload = 512

// KARMA models KARMA-style instruction-level in-kernel patching: a
// kernel module rewrites the vulnerable instructions directly, in
// place when the fixed code fits, via an entry redirect otherwise.
// It is the fastest of the kernel-trusted mechanisms for small
// patches (< 5µs in the paper's Table V) but cannot take patches that
// outgrow its instruction budget or change data structures.
type KARMA struct{}

var _ Patcher = KARMA{}

// Name implements Patcher.
func (KARMA) Name() string { return "KARMA" }

// Granularity implements Patcher.
func (KARMA) Granularity() string { return "instruction" }

// TCB implements Patcher.
func (KARMA) TCB() string { return "whole OS kernel + patch module" }

// TrustsKernel implements Patcher.
func (KARMA) TrustsKernel() bool { return true }

// Apply implements Patcher.
func (KARMA) Apply(t *Target, sp kernel.SourcePatch) (Result, error) {
	start := t.Clock.Now()
	bp, _, err := t.BuildPatch(sp)
	if err != nil {
		return Result{}, err
	}
	for i := range bp.Funcs {
		if len(bp.Funcs[i].Payload) > KARMAMaxPayload {
			return Result{}, fmt.Errorf("%w: %s is %d bytes",
				ErrPatchTooLarge, bp.Funcs[i].Name, len(bp.Funcs[i].Payload))
		}
	}
	if len(bp.Globals) > 0 {
		hasNew := false
		for _, g := range bp.Globals {
			if g.New {
				hasNew = true
			}
		}
		if hasNew {
			// Data-structure extension is beyond instruction-level
			// patching (§VII-C: "these methods cannot address changes
			// to data structures").
			return Result{}, fmt.Errorf("%w: patch adds global state", ErrPatchTooLarge)
		}
	}

	moduleBefore := t.moduleUse
	newFuncs := make(map[string]uint64, len(bp.Funcs))

	// Decide in-place vs redirect per function.
	type plan struct {
		idx     int
		inPlace bool
		at      uint64
	}
	var plans []plan
	for i := range bp.Funcs {
		f := &bp.Funcs[i]
		if f.New {
			a, err := t.allocModule(len(f.Payload))
			if err != nil {
				return Result{}, err
			}
			newFuncs[f.Name] = a
			plans = append(plans, plan{idx: i, at: a})
			continue
		}
		sym, ok := t.K.Symbols().Lookup(f.Name)
		if !ok {
			return Result{}, fmt.Errorf("karma: no function %q", f.Name)
		}
		skip := uint64(0)
		if f.Traced {
			skip = isa.FtracePrologueLen
		}
		if uint64(len(f.Payload)) <= sym.Size-skip {
			// Fixed code fits over the old body: rewrite in place.
			newFuncs[f.Name] = sym.Addr + skip
			plans = append(plans, plan{idx: i, inPlace: true, at: sym.Addr + skip})
			continue
		}
		a, err := t.allocModule(len(f.Payload))
		if err != nil {
			return Result{}, err
		}
		newFuncs[f.Name] = a
		plans = append(plans, plan{idx: i, at: a})
	}

	// KARMA's writes are small and atomic per instruction; it does
	// not stop the machine.
	t.Clock.Advance(timing.Linear(t.Model.KARMAFixed, t.Model.KARMAPerByte, bp.PayloadBytes()))
	newGlobals := make(map[string]uint64)
	if err := t.applyGlobals(bp, newGlobals); err != nil {
		return Result{}, err
	}
	for _, p := range plans {
		f := &bp.Funcs[p.idx]
		if p.inPlace {
			if err := t.writeInPlace(f, p.at, newFuncs); err != nil {
				return Result{}, err
			}
			continue
		}
		if err := t.installRedirect(f, t.K.Symbols(), newFuncs); err != nil {
			return Result{}, err
		}
	}

	if rk := t.activeRootkit(); rk != nil {
		if err := rk.Revert(); err != nil {
			return Result{}, err
		}
	}

	return Result{
		Pause:       0, // no stop_machine
		Total:       t.Clock.Now() - start,
		MemoryBytes: t.moduleUse - moduleBefore,
	}, nil
}
