package baseline

import (
	"kshot/internal/kernel"
	"kshot/internal/timing"
)

// Kpatch models kpatch/Ksplice-style live patching: the patch is
// prepared in userspace, loaded as a kernel module, and deployed by
// the kernel itself — stop_machine halts every CPU, ftrace-style
// entry hooks redirect the vulnerable functions to the module copies,
// and execution resumes. The whole mechanism runs at kernel privilege
// and its correctness depends on the kernel not being compromised.
type Kpatch struct{}

var _ Patcher = Kpatch{}

// Name implements Patcher.
func (Kpatch) Name() string { return "kpatch" }

// Granularity implements Patcher.
func (Kpatch) Granularity() string { return "function" }

// TCB implements Patcher.
func (Kpatch) TCB() string { return "whole OS kernel" }

// TrustsKernel implements Patcher.
func (Kpatch) TrustsKernel() bool { return true }

// Apply implements Patcher.
func (Kpatch) Apply(t *Target, sp kernel.SourcePatch) (Result, error) {
	start := t.Clock.Now()

	// Preparation (kpatch-build): runs in userspace, OS not paused.
	bp, _, err := t.BuildPatch(sp)
	if err != nil {
		return Result{}, err
	}
	t.Clock.Advance(timing.Linear(t.Model.PrepFixed, t.Model.PrepPerByte, bp.PayloadBytes()))

	// Allocate module space for payloads and new globals.
	moduleBefore := t.moduleUse
	newFuncs := make(map[string]uint64, len(bp.Funcs))
	for i := range bp.Funcs {
		a, err := t.allocModule(len(bp.Funcs[i].Payload))
		if err != nil {
			return Result{}, err
		}
		newFuncs[bp.Funcs[i].Name] = a
	}

	// stop_machine: all CPUs halt while the redirects are installed.
	t.M.Pause()
	pauseStart := t.Clock.Now()
	t.Clock.Advance(timing.Linear(t.Model.KpatchStopMachine, t.Model.KpatchPerByte, bp.PayloadBytes()))
	var applyErr error
	newGlobals := make(map[string]uint64)
	if err := t.applyGlobals(bp, newGlobals); err != nil {
		applyErr = err
	} else {
		for k, v := range newGlobals {
			newFuncs[k] = v
		}
		for i := range bp.Funcs {
			if err := t.installRedirect(&bp.Funcs[i], t.K.Symbols(), newFuncs); err != nil {
				applyErr = err
				break
			}
		}
	}
	pause := t.Clock.Now() - pauseStart
	t.M.Resume()
	if applyErr != nil {
		return Result{}, applyErr
	}

	// A resident kernel-level attacker sees the (kernel-driven)
	// patching activity and reverts it. kpatch has no mechanism to
	// notice: the deployment "succeeds" and stays silently undone —
	// the trust failure Table IV/V's comparison highlights.
	if rk := t.activeRootkit(); rk != nil {
		if err := rk.Revert(); err != nil {
			return Result{}, err
		}
	}

	return Result{
		Pause:       pause,
		Total:       t.Clock.Now() - start,
		MemoryBytes: t.moduleUse - moduleBefore,
	}, nil
}
