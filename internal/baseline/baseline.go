// Package baseline implements the kernel live patching systems KShot
// is compared against in Tables IV and V: a kpatch-like function
// redirector driven by ftrace and stop_machine, a KUP-like
// whole-kernel replacement with application checkpoint/restore, and a
// KARMA-like in-kernel instruction/function patcher.
//
// All three run on the same simulated machine and CVE benchmark as
// KShot, but — faithfully to the originals — they execute at *kernel*
// privilege and trust the kernel: their patching state lives in
// kernel-accessible memory and their writes are ordinary kernel
// writes. That is exactly the property the comparison probes: with a
// kernel-level attacker active, their deployed patches can be
// reverted undetected, while KShot's SMM introspection catches and
// repairs the reversion.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"kshot/internal/isa"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/timing"
)

// Module region: where in-kernel patchers place replacement code (the
// analogue of module/vmalloc space).
const (
	RegionModule    = "kernel.module"
	ModuleBase      = 0x700_0000
	ModuleSize      = 4 << 20
	moduleFuncAlign = 16
)

// Result reports one baseline patch application.
type Result struct {
	// Pause is the virtual time the OS was stopped.
	Pause time.Duration
	// Total is the virtual end-to-end time including preparation.
	Total time.Duration
	// MemoryBytes is the extra memory the mechanism consumed.
	MemoryBytes uint64
}

// Target is a machine+kernel a baseline patcher operates on.
type Target struct {
	M     *machine.Machine
	K     *kernel.Kernel
	Clock *timing.Clock
	Model timing.Model

	// pre is the running build; trees for rebuilds.
	preTree *kernel.SourceTree
	pre     patch.ImagePair

	rootkit   *Rootkit
	moduleUse uint64
}

// NewTarget boots a vulnerable kernel (version + extra subsystem
// files) for baseline experiments.
func NewTarget(version string, extraFiles map[string]string, numVCPUs int) (*Target, error) {
	st, err := kernel.BaseTree(version)
	if err != nil {
		return nil, err
	}
	for _, name := range sortedKeys(extraFiles) {
		st.AddFile(name, extraFiles[name])
	}
	img, unit, err := st.Build()
	if err != nil {
		return nil, err
	}
	m, err := machine.New(machine.Config{NumVCPUs: numVCPUs})
	if err != nil {
		return nil, err
	}
	k, err := kernel.Boot(m, img, st.Config())
	if err != nil {
		m.Stop()
		return nil, err
	}
	if _, err := m.Mem.Map(RegionModule, ModuleBase, ModuleSize, mem.Perms{
		Kernel: mem.PermRWX,
		SMM:    mem.PermRWX,
	}); err != nil {
		m.Stop()
		return nil, err
	}
	return &Target{
		M: m, K: k,
		Clock:   &timing.Clock{},
		Model:   timing.Calibrated(),
		preTree: st,
		pre:     patch.ImagePair{Img: img, Unit: unit},
	}, nil
}

// Close stops the target machine.
func (t *Target) Close() { t.M.Stop() }

// BuildPatch builds the binary patch locally — kernel-trusted systems
// prepare patches in (kernel-readable) host memory.
func (t *Target) BuildPatch(sp kernel.SourcePatch) (*patch.BinaryPatch, patch.ImagePair, error) {
	post := t.preTree.Clone()
	if err := post.Apply(sp); err != nil {
		return nil, patch.ImagePair{}, err
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		return nil, patch.ImagePair{}, err
	}
	pair := patch.ImagePair{Img: postImg, Unit: postUnit}
	bp, err := patch.Build(sp.ID, t.preTree.Config().Version, t.pre, pair)
	if err != nil {
		return nil, patch.ImagePair{}, err
	}
	return bp, pair, nil
}

// Rootkit models a kernel-level attacker resident in the target: it
// observes kernel memory writes (it owns the kernel) and reverts
// patches applied by kernel-trusted mechanisms. Against KShot the
// same attacker can still write to kernel text, but cannot see or
// forge SMM state — reversions are then caught by introspection.
type Rootkit struct {
	t *Target
	// saved entry bytes per function, captured before patching.
	saved map[string][]byte
}

// InstallRootkit plants the attacker: it snapshots the entry bytes of
// the functions it wants to keep vulnerable.
func (t *Target) InstallRootkit(functions []string) (*Rootkit, error) {
	rk := &Rootkit{t: t, saved: make(map[string][]byte)}
	for _, fn := range functions {
		sym, ok := t.K.Symbols().Lookup(fn)
		if !ok {
			return nil, fmt.Errorf("rootkit: no function %q", fn)
		}
		buf := make([]byte, 10)
		if err := t.M.Mem.Read(mem.PrivKernel, sym.Addr, buf); err != nil {
			return nil, err
		}
		rk.saved[fn] = buf
	}
	t.rootkit = rk
	return rk, nil
}

// Revert puts the saved (vulnerable) entry bytes back — the §V-D
// malicious patch reversion, performed at kernel privilege.
func (rk *Rootkit) Revert() error {
	for fn, bytes := range rk.saved {
		sym, ok := rk.t.K.Symbols().Lookup(fn)
		if !ok {
			return fmt.Errorf("rootkit: lost function %q", fn)
		}
		if err := rk.t.M.Mem.Write(mem.PrivKernel, sym.Addr, bytes); err != nil {
			return err
		}
	}
	return nil
}

// active reports whether a rootkit will fight this patch.
func (t *Target) activeRootkit() *Rootkit { return t.rootkit }

// Patcher is the interface the comparison harness (Table IV/V) uses.
type Patcher interface {
	// Name of the system.
	Name() string
	// Granularity of patching, as in Table V.
	Granularity() string
	// TCB of the mechanism, as in Table V.
	TCB() string
	// TrustsKernel reports whether a compromised kernel compromises
	// the mechanism.
	TrustsKernel() bool
	// Apply deploys a source patch to the target.
	Apply(t *Target, sp kernel.SourcePatch) (Result, error)
}

// ErrPatchTooLarge is returned by the KARMA-like patcher for patches
// beyond its in-place instruction budget.
var ErrPatchTooLarge = errors.New("baseline: patch exceeds instruction-level budget")

// allocModule reserves module space for a payload.
func (t *Target) allocModule(n int) (uint64, error) {
	cur := alignUp(t.moduleUse, moduleFuncAlign)
	if cur+uint64(n) > ModuleSize {
		return 0, errors.New("baseline: module space exhausted")
	}
	t.moduleUse = cur + uint64(n)
	return ModuleBase + cur, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// relocatePayload resolves a payload's relocations for placement at
// paddr, against the running kernel's symbols plus the patch's own
// new symbols.
func (t *Target) relocatePayload(f *patch.FuncPatch, paddr uint64, kernelSyms *isa.SymTab, newSyms map[string]uint64) ([]byte, error) {
	payload := append([]byte(nil), f.Payload...)
	for _, r := range f.Relocs {
		var base uint64
		if a, ok := newSyms[r.Sym]; ok {
			base = a
		} else if s, ok := kernelSyms.Lookup(r.Sym); ok {
			base = s.Addr
		} else {
			return nil, fmt.Errorf("baseline: unresolved symbol %q", r.Sym)
		}
		target := uint64(int64(base) + r.Addend)
		switch r.Kind {
		case patch.RelocBranch:
			rel, err := isa.JmpRel32To(paddr+uint64(r.Offset)-1, target)
			if err != nil {
				return nil, err
			}
			putU32(payload[r.Offset:], uint32(rel))
		case patch.RelocAbs64:
			putU64(payload[r.Offset:], target)
		}
	}
	return payload, nil
}

// installRedirect places a payload in module space and writes the
// entry trampoline — all at kernel privilege.
func (t *Target) installRedirect(f *patch.FuncPatch, kernelSyms *isa.SymTab, newSyms map[string]uint64) error {
	paddr, ok := newSyms[f.Name]
	if !ok {
		return fmt.Errorf("baseline: %s not allocated", f.Name)
	}
	payload, err := t.relocatePayload(f, paddr, kernelSyms, newSyms)
	if err != nil {
		return err
	}
	if err := t.M.Mem.Write(mem.PrivKernel, paddr, payload); err != nil {
		return err
	}
	if f.New {
		return nil
	}
	sym, ok := kernelSyms.Lookup(f.Name)
	if !ok {
		return fmt.Errorf("baseline: no target %q", f.Name)
	}
	at := sym.Addr
	if f.Traced {
		at += isa.FtracePrologueLen
	}
	rel, err := isa.JmpRel32To(at, paddr)
	if err != nil {
		return err
	}
	return t.M.Mem.Write(mem.PrivKernel, at, isa.EncodeJmpRel32(rel))
}

// writeInPlace relocates a payload for its original location and
// overwrites the old body (the instruction-level rewrite path).
func (t *Target) writeInPlace(f *patch.FuncPatch, at uint64, newSyms map[string]uint64) error {
	payload, err := t.relocatePayload(f, at, t.K.Symbols(), newSyms)
	if err != nil {
		return err
	}
	return t.M.Mem.Write(mem.PrivKernel, at, payload)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// applyGlobals installs data edits at kernel privilege (existing
// globals only; kernel-trusted patchers allocate new globals in
// module space).
func (t *Target) applyGlobals(bp *patch.BinaryPatch, newGlobals map[string]uint64) error {
	for _, g := range bp.Globals {
		var addr uint64
		if g.New {
			a, err := t.allocModule(int(g.Size))
			if err != nil {
				return err
			}
			newGlobals[g.Name] = a
			addr = a
		} else {
			sym, ok := t.K.Symbols().Lookup(g.Name)
			if !ok {
				return fmt.Errorf("baseline: no global %q", g.Name)
			}
			addr = sym.Addr
		}
		init := g.Init
		if init == nil {
			init = make([]byte, g.Size)
		}
		if err := t.M.Mem.Write(mem.PrivKernel, addr, init); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
