package baseline

import (
	"fmt"

	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/timing"
)

// KUP models KUP-style whole-kernel replacement: checkpoint the
// running applications, kexec into a fully rebuilt patched kernel, and
// restore application state. It handles arbitrarily invasive patches
// (including data-structure changes the function-level systems cannot)
// at the cost of seconds of downtime and a large checkpoint footprint
// — the space/time tradeoff §IV-B discusses.
type KUP struct{}

var _ Patcher = KUP{}

// Name implements Patcher.
func (KUP) Name() string { return "KUP" }

// Granularity implements Patcher.
func (KUP) Granularity() string { return "whole kernel" }

// TCB implements Patcher.
func (KUP) TCB() string { return "whole OS kernel + kexec" }

// TrustsKernel implements Patcher.
func (KUP) TrustsKernel() bool { return true }

// Apply implements Patcher.
func (KUP) Apply(t *Target, sp kernel.SourcePatch) (Result, error) {
	start := t.Clock.Now()

	// Rebuild the whole kernel with the patch.
	post := t.preTree.Clone()
	if err := post.Apply(sp); err != nil {
		return Result{}, err
	}
	postImg, _, err := post.Build()
	if err != nil {
		return Result{}, err
	}

	// Checkpoint application state: user-visible memory (the heap
	// region, where application buffers live) plus per-CPU register
	// state. This is the storage KUP burns that KShot avoids.
	heap := make([]byte, kernel.HeapSize)
	if err := t.M.Mem.Read(mem.PrivKernel, kernel.HeapBase, heap); err != nil {
		return Result{}, err
	}
	checkpointBytes := len(heap) + t.M.NumVCPUs()*256
	t.Clock.Advance(timing.Linear(0, t.Model.KUPCheckpointPerByte, checkpointBytes))

	// kexec: the OS stops, the new kernel image replaces the old one.
	t.M.Pause()
	pauseStart := t.Clock.Now()
	t.Clock.Advance(t.Model.KUPKexecFixed)

	bootImg := postImg
	if rk := t.activeRootkit(); rk != nil {
		// A compromised kernel controls the kexec path: the attacker
		// swaps the staged image for the still-vulnerable one
		// (CVE-2015-7837-style unsigned kernel load, as §VI-D2
		// describes). The "update" boots the old kernel.
		bootImg = t.pre.Img
	}
	if err := t.K.ReplaceImage(bootImg); err != nil {
		t.M.Resume()
		return Result{}, err
	}
	// Restore application state into the new kernel.
	if err := t.M.Mem.Write(mem.PrivSMM, kernel.HeapBase, heap); err != nil {
		t.M.Resume()
		return Result{}, err
	}
	pause := t.Clock.Now() - pauseStart
	t.M.Resume()

	if _, err := t.K.Call(0, "kernel_init"); err != nil {
		return Result{}, fmt.Errorf("kup: new kernel init: %w", err)
	}

	return Result{
		Pause:       pause,
		Total:       t.Clock.Now() - start,
		MemoryBytes: uint64(checkpointBytes) + uint64(len(postImg.Text)+len(postImg.Data)),
	}, nil
}
