package baseline

import (
	"errors"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kernel"
	"kshot/internal/mem"
)

func newCVETarget(t *testing.T, cve string) (*Target, *cvebench.Entry) {
	t.Helper()
	e, ok := cvebench.Get(cve)
	if !ok {
		t.Fatalf("unknown CVE %s", cve)
	}
	tgt, err := NewTarget("4.4", map[string]string{e.File: e.Vuln}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tgt.Close)
	return tgt, e
}

func TestKpatchAppliesFunctionPatch(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2014-0196")
	res, err := e.Exploit(tgt.K, 0)
	if err != nil || !res.Vulnerable {
		t.Fatalf("not vulnerable: %+v %v", res, err)
	}
	r, err := Kpatch{}.Apply(tgt, e.SourcePatch())
	if err != nil {
		t.Fatal(err)
	}
	res, err = e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("kpatch did not fix the bug")
	}
	if r.Pause <= 0 || r.Total < r.Pause || r.MemoryBytes == 0 {
		t.Errorf("result = %+v", r)
	}
	// kpatch's pause includes stop_machine: it must exceed KShot's
	// tens-of-µs SMM pause scale.
	if r.Pause < 1*time.Millisecond {
		t.Errorf("kpatch pause %v suspiciously small", r.Pause)
	}
}

func TestKpatchDefeatedByRootkit(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2014-0196")
	if _, err := tgt.InstallRootkit(e.Functions); err != nil {
		t.Fatal(err)
	}
	if _, err := (Kpatch{}).Apply(tgt, e.SourcePatch()); err != nil {
		t.Fatalf("kpatch reported failure (it should silently 'succeed'): %v", err)
	}
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Error("rootkit failed to revert the kernel-trusted patch")
	}
}

func TestKUPWholeKernelReplacement(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2016-7916")
	// Application state in the heap must survive the update.
	if err := tgt.M.Mem.WriteU64(mem.PrivKernel, kernel.HeapBase+128, 0xFEED); err != nil {
		t.Fatal(err)
	}
	r, err := KUP{}.Apply(tgt, e.SourcePatch())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("KUP did not fix the bug")
	}
	v, err := tgt.M.Mem.ReadU64(mem.PrivKernel, kernel.HeapBase+128)
	if err != nil || v != 0xFEED {
		t.Errorf("application state lost across kexec: %#x, %v", v, err)
	}
	// KUP's pause is seconds (kexec) and its memory footprint is the
	// checkpoint + new image — both orders of magnitude above KShot.
	if r.Pause < time.Second {
		t.Errorf("KUP pause %v below kexec scale", r.Pause)
	}
	if r.MemoryBytes < kernel.HeapSize {
		t.Errorf("KUP memory %d below checkpoint size", r.MemoryBytes)
	}
}

func TestKUPHijackedByRootkit(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2016-7916")
	if _, err := tgt.InstallRootkit(e.Functions); err != nil {
		t.Fatal(err)
	}
	if _, err := (KUP{}).Apply(tgt, e.SourcePatch()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Error("hijacked kexec still delivered the patched kernel")
	}
}

func TestKARMASmallPatch(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2014-4157") // 5 LoC, smallest in Table I
	r, err := KARMA{}.Apply(tgt, e.SourcePatch())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("KARMA did not fix the bug")
	}
	if r.Pause != 0 {
		t.Errorf("KARMA pause = %v, want 0 (no stop_machine)", r.Pause)
	}
	// Sub-5µs scale for small patches (Table V).
	if r.Total > 100*time.Microsecond {
		t.Errorf("KARMA total %v above small-patch scale", r.Total)
	}
}

func TestKARMARejectsLargePatch(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2016-7914") // 330 LoC
	_, err := KARMA{}.Apply(tgt, e.SourcePatch())
	if !errors.Is(err, ErrPatchTooLarge) {
		t.Fatalf("got %v, want ErrPatchTooLarge", err)
	}
	// Nothing half-applied.
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Error("rejected patch had partial effect")
	}
}

func TestKARMARejectsDataStructureChange(t *testing.T) {
	tgt, e := newCVETarget(t, "CVE-2014-3690") // Type 3
	if _, err := (KARMA{}).Apply(tgt, e.SourcePatch()); !errors.Is(err, ErrPatchTooLarge) {
		t.Fatalf("Type 3 patch not rejected: %v", err)
	}
}

func TestKARMAInPlaceRewrite(t *testing.T) {
	// A fix that shrinks the function rewrites it in place, consuming
	// no module memory.
	vuln := `
.func tiny_check           ; (x) -> 1 always (vulnerable)
    movi r0, 1
    addi r0, 0
    addi r0, 0
    ret
.endfunc
`
	fixed := `
.func tiny_check           ; (x) -> 0 always (locked down)
    movi r0, 0
    ret
.endfunc
`
	tgt, err := NewTarget("4.4", map[string]string{"cve/tiny.asm": vuln}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	r, err := KARMA{}.Apply(tgt, kernel.SourcePatch{ID: "TINY", Files: map[string]string{"cve/tiny.asm": fixed}})
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoryBytes != 0 {
		t.Errorf("in-place rewrite consumed %d module bytes", r.MemoryBytes)
	}
	v, err := tgt.K.Call(0, "tiny_check", 9)
	if err != nil || v != 0 {
		t.Errorf("tiny_check = %d, %v; want 0", v, err)
	}
}

func TestKUPHandlesDataStructureChange(t *testing.T) {
	// The Type 3 patch KARMA rejects, KUP takes (whole-kernel
	// replacement sidesteps layout compatibility).
	tgt, e := newCVETarget(t, "CVE-2014-3690")
	if _, err := (KUP{}).Apply(tgt, e.SourcePatch()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exploit(tgt.K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("KUP did not fix Type 3 bug")
	}
}

func TestPatcherMetadata(t *testing.T) {
	for _, p := range []Patcher{Kpatch{}, KUP{}, KARMA{}} {
		if p.Name() == "" || p.Granularity() == "" || p.TCB() == "" {
			t.Errorf("%T: empty metadata", p)
		}
		if !p.TrustsKernel() {
			t.Errorf("%s claims not to trust the kernel", p.Name())
		}
	}
}

func TestTargetErrors(t *testing.T) {
	if _, err := NewTarget("9.9", nil, 1); err == nil {
		t.Error("bad version accepted")
	}
	tgt, err := NewTarget("4.4", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if _, err := tgt.InstallRootkit([]string{"nosuch"}); err == nil {
		t.Error("rootkit on missing function accepted")
	}
	if _, _, err := tgt.BuildPatch(kernel.SourcePatch{ID: "X", Files: map[string]string{"no/file.asm": ""}}); err == nil {
		t.Error("patch for unknown file accepted")
	}
}
