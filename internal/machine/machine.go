// Package machine glues physical memory and vCPUs into a runnable
// target machine with the pause/resume semantics KShot's SMM component
// relies on.
//
// Each vCPU executes call sessions on its own goroutine, checking a
// pause gate between instructions. Raising an SMI (from the smm
// package) pauses every vCPU at an instruction boundary — exactly the
// synchronous world-switch real SMM hardware performs — so the SMM
// handler observes a quiescent machine, and execution resumes where it
// stopped afterwards.
package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kshot/internal/isa"
	"kshot/internal/mem"
)

// Default layout constants for the simulated target machine.
const (
	// DefaultPhysSize is the machine's physical memory size. The
	// paper's testbed has 16 GB; 256 MB is ample for the simulated
	// kernel plus the 18 MB reservation and keeps tests fast.
	DefaultPhysSize = 256 << 20

	// StackRegionBase is where per-vCPU kernel stacks are mapped.
	StackRegionBase = 0xC00_0000
	// StackSize is the per-vCPU kernel stack size.
	StackSize = 256 << 10
)

// ErrStopped is returned for work submitted to a stopped machine.
var ErrStopped = errors.New("machine: stopped")

// Config configures a new Machine.
type Config struct {
	PhysSize uint64 // physical memory bytes (default DefaultPhysSize)
	NumVCPUs int    // number of vCPUs (default 4)

	// Dispatch selects the execution engine: predecoded basic blocks
	// (the zero value, isa.DispatchBlocks), the decode-switch oracle,
	// or differential lockstep verification of the two. Lockstep
	// requires a single vCPU: it rewinds and replays shared memory
	// every dispatch unit.
	Dispatch isa.Dispatch
}

// Machine is the simulated target host.
type Machine struct {
	Mem *mem.Physical

	vcpus    []*VCPU
	dispatch isa.Dispatch

	gate pauseGate

	mu      sync.Mutex
	stopped bool
}

// New builds a machine with mapped per-vCPU stacks and started vCPU
// runner goroutines. Call Stop when done.
func New(cfg Config) (*Machine, error) {
	if cfg.PhysSize == 0 {
		cfg.PhysSize = DefaultPhysSize
	}
	if cfg.NumVCPUs == 0 {
		cfg.NumVCPUs = 4
	}
	if cfg.Dispatch == isa.DispatchLockstep && cfg.NumVCPUs != 1 {
		return nil, fmt.Errorf("machine: lockstep dispatch requires exactly 1 vCPU, got %d", cfg.NumVCPUs)
	}
	m := &Machine{Mem: mem.New(cfg.PhysSize), dispatch: cfg.Dispatch}
	m.gate.init()

	for i := 0; i < cfg.NumVCPUs; i++ {
		base := StackRegionBase + uint64(i)*StackSize
		name := fmt.Sprintf("stack.vcpu%d", i)
		// Stacks carry data, never code: no X at any privilege, so
		// pushes don't invalidate the block-dispatch code cache.
		if _, err := m.Mem.Map(name, base, StackSize, mem.Perms{
			Kernel: mem.PermRW,
			SMM:    mem.PermRW,
		}); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		cpu := isa.New(m.Mem, mem.PrivKernel)
		v := &VCPU{
			ID:       i,
			cpu:      cpu,
			runner:   isa.NewRunner(cpu, cfg.Dispatch),
			stackTop: base + StackSize,
			machine:  m,
			reqs:     make(chan *callReq),
		}
		m.vcpus = append(m.vcpus, v)
		go v.run()
	}
	return m, nil
}

// Fork clones the machine copy-on-write: the child gets a
// mem.Physical.Fork of physical memory (shared clean frames, private
// dirty frames, duplicated region table) and fresh vCPUs with fresh
// runner goroutines, stacks, and predecoded-block caches. Nothing is
// re-mapped — the per-vCPU stack regions are already present in the
// forked region table — so a fork costs O(frames) pointer work plus
// vCPU construction, independent of how much memory is resident.
//
// The parent must be quiescent (no call sessions in flight, no SMI
// pending); this is the template-fork provisioning contract — a
// template machine halts after kernel init and is only ever forked.
// Parent and child then run fully independently: separate pause
// gates, separate code epochs, separate block caches.
func (m *Machine) Fork() (*Machine, error) {
	m.mu.Lock()
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		return nil, ErrStopped
	}
	child := &Machine{Mem: m.Mem.Fork(), dispatch: m.dispatch}
	child.gate.init()
	for i := range m.vcpus {
		base := StackRegionBase + uint64(i)*StackSize
		cpu := isa.New(child.Mem, mem.PrivKernel)
		v := &VCPU{
			ID:       i,
			cpu:      cpu,
			runner:   isa.NewRunner(cpu, m.dispatch),
			stackTop: base + StackSize,
			machine:  child,
			reqs:     make(chan *callReq),
		}
		child.vcpus = append(child.vcpus, v)
		go v.run()
	}
	return child, nil
}

// NumVCPUs returns the vCPU count.
func (m *Machine) NumVCPUs() int { return len(m.vcpus) }

// Dispatch returns the machine's execution-engine mode.
func (m *Machine) Dispatch() isa.Dispatch { return m.dispatch }

// VCPU returns vCPU i.
func (m *Machine) VCPU(i int) *VCPU { return m.vcpus[i] }

// Stop shuts down all vCPU runner goroutines. In-flight sessions
// complete first. Stop is idempotent.
func (m *Machine) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	for _, v := range m.vcpus {
		close(v.reqs)
	}
}

// SetIntrospect installs (or, with nil, removes) the execution-layer
// introspection sink on every vCPU that runs through the block engine
// (blocks and lockstep dispatch; the pure oracle has no cache to
// observe and no unit-level hook). The machine is paused for the
// handoff so engines only ever see the sink change at a unit boundary.
func (m *Machine) SetIntrospect(sink isa.IntrospectSink) {
	m.gate.pause()
	defer m.gate.resume()
	for _, v := range m.vcpus {
		switch r := v.runner.(type) {
		case *isa.Engine:
			r.SetIntrospect(sink, v.ID)
		case *isa.Lockstep:
			r.Engine().SetIntrospect(sink, v.ID)
		}
	}
}

// Pause halts every vCPU at an instruction boundary and returns once
// all of them are quiescent. It is what an SMI does to the host.
func (m *Machine) Pause() { m.gate.pause() }

// Resume releases paused vCPUs (the RSM side of the world switch).
func (m *Machine) Resume() { m.gate.resume() }

// Paused reports whether the machine is currently paused.
func (m *Machine) Paused() bool { return m.gate.isPaused() }

// States captures the architectural state of every vCPU. Only
// meaningful while paused (the SMM save-state step).
func (m *Machine) States() []isa.State {
	out := make([]isa.State, len(m.vcpus))
	for i, v := range m.vcpus {
		out[i] = v.cpu.Save()
	}
	return out
}

// RestoreStates restores previously captured vCPU states. Only
// meaningful while paused (the RSM restore step).
func (m *Machine) RestoreStates(states []isa.State) error {
	if len(states) != len(m.vcpus) {
		return fmt.Errorf("machine: restoring %d states onto %d vcpus", len(states), len(m.vcpus))
	}
	for i, v := range m.vcpus {
		v.cpu.Restore(states[i])
	}
	return nil
}

// Snapshot is a whole-machine capture: physical memory (copy-on-write,
// frame-granular) plus every vCPU's architectural state. It is what a
// verification rig needs to prove a patch cycle left no residue.
type Snapshot struct {
	Mem    *mem.Snapshot
	States []isa.State
}

// Snapshot captures memory and vCPU state. Like States, it is only
// meaningful while the machine is paused or otherwise quiescent.
// Memory is captured copy-on-write, so the cost is independent of how
// much of physical memory is resident.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{Mem: m.Mem.Snapshot(), States: m.States()}
}

// RestoreSnapshot rewinds memory and vCPU state to the capture. The
// snapshot stays valid and can be restored again.
func (m *Machine) RestoreSnapshot(s *Snapshot) error {
	if s == nil {
		return errors.New("machine: nil snapshot")
	}
	if err := m.Mem.Restore(s.Mem); err != nil {
		return err
	}
	return m.RestoreStates(s.States)
}

// callReq is one function-call session submitted to a vCPU.
type callReq struct {
	entry    uint64
	args     []uint64
	maxSteps int
	done     chan callRes
}

type callRes struct {
	ret uint64
	err error
}

// VCPU is one virtual CPU with a dedicated runner goroutine and kernel
// stack.
type VCPU struct {
	ID int

	cpu      *isa.CPU
	runner   isa.Runner
	stackTop uint64
	machine  *Machine
	reqs     chan *callReq
}

// EngineStats returns the vCPU's block-cache counters and true when the
// dispatch mode uses the block engine (blocks or lockstep). Only
// meaningful while the vCPU is quiescent (no session in flight).
func (v *VCPU) EngineStats() (isa.EngineStats, bool) {
	switch r := v.runner.(type) {
	case *isa.Engine:
		return r.Stats(), true
	case *isa.Lockstep:
		return r.Engine().Stats(), true
	}
	return isa.EngineStats{}, false
}

// run is the vCPU runner goroutine: it executes submitted call
// sessions instruction by instruction, honoring the pause gate between
// steps.
func (v *VCPU) run() {
	for req := range v.reqs {
		res := v.execute(req)
		req.done <- res
	}
}

// execute runs one call session. Every access to the vCPU's
// architectural state happens inside a gate bracket, so a paused
// machine exposes stable state to States/RestoreStates.
func (v *VCPU) execute(req *callReq) callRes {
	c := v.cpu
	g := &v.machine.gate

	g.beginStep()
	c.Reg = [isa.NumRegs]uint64{}
	c.Reg[isa.RegSP] = v.stackTop
	for i, a := range req.args {
		c.Reg[1+i] = a
	}
	// Push the stop sentinel.
	c.Reg[isa.RegSP] -= 8
	err := c.M.WriteU64(c.Priv, c.Reg[isa.RegSP], isa.StopAddr)
	c.RIP = req.entry
	g.endStep()
	if err != nil {
		return callRes{err: err}
	}

	// Dispatch units (one basic block, or one instruction under the
	// oracle) execute inside one gate bracket each: an SMI still lands
	// at an architectural instruction boundary — units commit RIP
	// before yielding — just a coarser one than single-stepping.
	for steps := 0; ; {
		g.beginStep()
		if c.Done() {
			ret := c.Reg[0]
			g.endStep()
			return callRes{ret: ret}
		}
		if steps >= req.maxSteps {
			g.endStep()
			return callRes{err: isa.ErrStepLimit}
		}
		n, err := v.runner.RunUnit(req.maxSteps - steps)
		g.endStep()
		if err != nil {
			return callRes{err: err}
		}
		if n < 1 {
			n = 1
		}
		steps += n
	}
}

// Call runs the function at entry on this vCPU with up to five
// arguments, blocking until the session completes. It is safe to call
// from multiple goroutines; sessions on one vCPU serialize.
func (v *VCPU) Call(entry uint64, maxSteps int, args ...uint64) (uint64, error) {
	if len(args) > 5 {
		return 0, fmt.Errorf("vcpu %d: too many arguments (%d)", v.ID, len(args))
	}
	req := &callReq{entry: entry, args: args, maxSteps: maxSteps, done: make(chan callRes, 1)}

	v.machine.mu.Lock()
	stopped := v.machine.stopped
	v.machine.mu.Unlock()
	if stopped {
		return 0, ErrStopped
	}
	v.reqs <- req
	res := <-req.done
	return res.ret, res.err
}

// pauseGate coordinates the SMI world switch. Every instruction
// executes inside a beginStep/endStep bracket (a read lock); pause()
// takes the write lock, which blocks new brackets from opening and
// waits until all open ones close, so when it returns the machine is
// quiescent at instruction boundaries — exactly the guarantee SMM
// hardware gives the handler. The write lock is held until resume(),
// and concurrent pausers serialize on it.
type pauseGate struct {
	rw     sync.RWMutex
	paused atomic.Bool
}

func (g *pauseGate) init() {}

// beginStep opens an instruction execution bracket, parking while the
// machine is paused.
func (g *pauseGate) beginStep() { g.rw.RLock() }

// endStep closes the bracket opened by beginStep.
func (g *pauseGate) endStep() { g.rw.RUnlock() }

// pause requests a world switch and returns once no instruction is in
// flight.
func (g *pauseGate) pause() {
	g.rw.Lock()
	g.paused.Store(true)
}

// resume releases parked vCPUs.
func (g *pauseGate) resume() {
	g.paused.Store(false)
	g.rw.Unlock()
}

func (g *pauseGate) isPaused() bool { return g.paused.Load() }
