package machine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kshot/internal/isa"
	"kshot/internal/mem"
)

const testSrc = `
.global counter 8
.func bump
    loadg r0, counter
    addi r0, 1
    storeg counter, r0
    ret
.endfunc
.func addmul
    mov r0, r1
    add r0, r2
    movi r3, 3
    mul r0, r3
    ret
.endfunc
.func spinny      ; busy loop r1 times then return r1
    mov r0, r1
.l:
    cmpi r1, 0
    jz .d
    subi r1, 1
    jmp .l
.d:
    ret
.endfunc
`

// newTestMachine boots a machine with the test image loaded.
func newTestMachine(t *testing.T, n int) (*Machine, *isa.Image) {
	t.Helper()
	m, err := New(Config{NumVCPUs: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	img, err := isa.Link(isa.MustParse(testSrc), isa.LinkOptions{TextBase: 0x10_0000, DataBase: 0x40_0000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("ktext", img.TextBase, uint64(len(img.Text)), mem.Perms{Kernel: mem.PermRX, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(mem.PrivSMM, img.TextBase, img.Text); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("kdata", img.DataBase, 4096, mem.Perms{Kernel: mem.PermRW, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(mem.PrivSMM, img.DataBase, img.Data); err != nil {
		t.Fatal(err)
	}
	return m, img
}

func entry(t *testing.T, img *isa.Image, name string) uint64 {
	t.Helper()
	s, ok := img.Symbols.Lookup(name)
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	return s.Addr
}

func TestCallOnVCPU(t *testing.T) {
	m, img := newTestMachine(t, 2)
	got, err := m.VCPU(0).Call(entry(t, img, "addmul"), 1000, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("addmul(2,3) = %d, want 15", got)
	}
}

func TestConcurrentCallsAcrossVCPUs(t *testing.T) {
	m, img := newTestMachine(t, 4)
	e := entry(t, img, "bump")
	var wg sync.WaitGroup
	const perCPU = 50
	for i := 0; i < m.NumVCPUs(); i++ {
		wg.Add(1)
		go func(v *VCPU) {
			defer wg.Done()
			for j := 0; j < perCPU; j++ {
				if _, err := v.Call(e, 10000); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}(m.VCPU(i))
	}
	wg.Wait()
	sym, _ := img.Symbols.Lookup("counter")
	// NOTE: bump is not atomic; with multiple vCPUs updates may race
	// (exactly as unlocked kernel code would). The counter must be
	// positive and at most the total number of calls.
	v, err := m.Mem.ReadU64(mem.PrivKernel, sym.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 || v > perCPU*uint64(m.NumVCPUs()) {
		t.Errorf("counter = %d out of range", v)
	}
}

func TestPauseQuiescesMachine(t *testing.T) {
	m, img := newTestMachine(t, 4)
	e := entry(t, img, "spinny")

	var running atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < m.NumVCPUs(); i++ {
		wg.Add(1)
		go func(v *VCPU) {
			defer wg.Done()
			running.Add(1)
			defer running.Add(-1)
			if _, err := v.Call(e, 1<<30, 300_000); err != nil {
				t.Errorf("spinny: %v", err)
			}
		}(m.VCPU(i))
	}

	// Let them get going, then pause and check quiescence: vCPU states
	// must not change while paused.
	time.Sleep(5 * time.Millisecond)
	m.Pause()
	if !m.Paused() {
		t.Fatal("Paused() false after Pause")
	}
	s1 := m.States()
	time.Sleep(5 * time.Millisecond)
	s2 := m.States()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("vcpu %d state changed while paused", i)
		}
	}
	m.Resume()
	wg.Wait()
}

func TestStateSaveRestoreAcrossPause(t *testing.T) {
	m, img := newTestMachine(t, 2)
	e := entry(t, img, "spinny")

	done := make(chan error, 1)
	go func() {
		_, err := m.VCPU(0).Call(e, 1<<30, 300_000)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)

	m.Pause()
	states := m.States()
	// Clobber registers (as a handler bug would), then restore.
	m.VCPU(0).cpu.Reg[1] = 0xdead
	if err := m.RestoreStates(states); err != nil {
		t.Fatal(err)
	}
	m.Resume()
	if err := <-done; err != nil {
		t.Fatalf("session failed after pause/restore: %v", err)
	}

	if err := m.RestoreStates(states[:1]); err == nil {
		t.Error("RestoreStates with wrong count succeeded")
	}
}

func TestRepeatedPauseResume(t *testing.T) {
	m, img := newTestMachine(t, 2)
	e := entry(t, img, "bump")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := m.VCPU(0).Call(e, 10000); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 100; i++ {
		m.Pause()
		m.Resume()
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentPausersSerialize(t *testing.T) {
	m, _ := newTestMachine(t, 2)
	var inHandler atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Pause()
			if n := inHandler.Add(1); n != 1 {
				t.Errorf("%d pausers active simultaneously", n)
			}
			time.Sleep(100 * time.Microsecond)
			inHandler.Add(-1)
			m.Resume()
		}()
	}
	wg.Wait()
}

func TestStop(t *testing.T) {
	m, img := newTestMachine(t, 1)
	e := entry(t, img, "bump")
	if _, err := m.VCPU(0).Call(e, 1000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop() // idempotent
	if _, err := m.VCPU(0).Call(e, 1000); err != ErrStopped {
		t.Errorf("Call after Stop = %v, want ErrStopped", err)
	}
}

func TestTooManyArgs(t *testing.T) {
	m, img := newTestMachine(t, 1)
	if _, err := m.VCPU(0).Call(entry(t, img, "bump"), 10, 1, 2, 3, 4, 5, 6); err == nil {
		t.Error("six args accepted")
	}
}

func TestDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if m.NumVCPUs() != 4 {
		t.Errorf("default vCPUs = %d, want 4", m.NumVCPUs())
	}
	if m.Mem.Size() != DefaultPhysSize {
		t.Errorf("default phys size = %d", m.Mem.Size())
	}
}
