package machine

import (
	"testing"

	"kshot/internal/mem"
)

func TestMachineSnapshotRestore(t *testing.T) {
	m, img := newTestMachine(t, 2)
	bump := entry(t, img, "bump")
	counter, ok := img.Symbols.Lookup("counter")
	if !ok {
		t.Fatal("no counter symbol")
	}

	if _, err := m.VCPU(0).Call(bump, 1000); err != nil {
		t.Fatal(err)
	}
	m.Pause()
	snap := m.Snapshot()
	m.Resume()

	// Diverge: more bumps, scribble over vCPU 1's register file.
	for i := 0; i < 3; i++ {
		if _, err := m.VCPU(1).Call(bump, 1000); err != nil {
			t.Fatal(err)
		}
	}

	m.Pause()
	if err := m.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	m.Resume()
	v, err := m.Mem.ReadU64(mem.PrivKernel, counter.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("counter after restore = %d, want 1", v)
	}
	// The machine keeps working after a restore.
	if _, err := m.VCPU(1).Call(bump, 1000); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem.ReadU64(mem.PrivKernel, counter.Addr); v != 2 {
		t.Fatalf("counter after post-restore bump = %d, want 2", v)
	}

	if err := m.RestoreSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// BenchmarkMachineNew measures machine construction — the dominant
// cost of every evaluation iteration. With the sparse store this no
// longer zeroes 256 MB of backing memory.
func BenchmarkMachineNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		m.Stop()
	}
}
