package machine

import (
	"errors"
	"sync"
	"testing"

	"kshot/internal/mem"
)

func TestForkRunsIndependently(t *testing.T) {
	m, img := newTestMachine(t, 2)
	e := entry(t, img, "bump")
	sym, _ := img.Symbols.Lookup("counter")

	// Prime the template's counter, then fork.
	if _, err := m.VCPU(0).Call(e, 10000); err != nil {
		t.Fatal(err)
	}
	child, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(child.Stop)
	if child.NumVCPUs() != m.NumVCPUs() {
		t.Fatalf("fork has %d vCPUs, template %d", child.NumVCPUs(), m.NumVCPUs())
	}

	// The fork sees the template's state and computes on its own
	// memory: its bumps never show up in the template.
	for i := 0; i < 4; i++ {
		if _, err := child.VCPU(i%2).Call(e, 10000); err != nil {
			t.Fatal(err)
		}
	}
	cv, err := child.Mem.ReadU64(mem.PrivKernel, sym.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if cv != 5 {
		t.Errorf("fork counter = %d, want 5 (1 inherited + 4 own)", cv)
	}
	tv, err := m.Mem.ReadU64(mem.PrivKernel, sym.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 1 {
		t.Errorf("template counter = %d after fork ran, want 1", tv)
	}
}

func TestForkConcurrentSiblings(t *testing.T) {
	m, img := newTestMachine(t, 2)
	e := entry(t, img, "bump")
	sym, _ := img.Symbols.Lookup("counter")

	const forks = 4
	children := make([]*Machine, forks)
	for i := range children {
		c, err := m.Fork()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Stop)
		children[i] = c
	}
	var wg sync.WaitGroup
	for i, c := range children {
		wg.Add(1)
		go func(i int, c *Machine) {
			defer wg.Done()
			for j := 0; j <= i; j++ { // fork i bumps i+1 times
				if _, err := c.VCPU(0).Call(e, 10000); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, c := range children {
		v, err := c.Mem.ReadU64(mem.PrivKernel, sym.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i+1) {
			t.Errorf("fork %d counter = %d, want %d", i, v, i+1)
		}
	}
	if v, _ := m.Mem.ReadU64(mem.PrivKernel, sym.Addr); v != 0 {
		t.Errorf("template counter = %d, want 0", v)
	}
}

func TestForkOfStoppedMachine(t *testing.T) {
	m, _ := newTestMachine(t, 1)
	m.Stop()
	if _, err := m.Fork(); !errors.Is(err, ErrStopped) {
		t.Fatalf("fork of stopped machine: err = %v, want ErrStopped", err)
	}
}
