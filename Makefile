# KShot simulation build targets. `make check` is the tier-1 gate;
# `make race` adds the data-race detector over the full suite.

GO ?= go

.PHONY: all build vet test race short bench benchsmoke benchjson check fuzz cover api apicheck corpus corpussmoke adversary-smoke

# Per-target budget for the fuzz smoke pass (see `fuzz` below).
FUZZTIME ?= 30s

# Statement-coverage ratchet for `make cover`: the build fails if total
# coverage drops below this. Raise it when coverage improves; never
# lower it to make a change pass.
COVERMIN ?= 75.0

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in the tree — catches benchmarks
# that bit-rot without paying for statistically meaningful timings.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Machine-readable evaluation results (JSON) for dashboards and diffing
# runs; see cmd/kshot-bench -json.
BENCHJSON ?= bench.json
benchjson:
	$(GO) run ./cmd/kshot-bench -json -table2 -table3 -table5 -pipeline -fleet -rollout -provision -dispatch -detect -detect-trials 5 -detect-ops 5000 -iters 1 -o $(BENCHJSON) > /dev/null

# Public API surface snapshot. `make api` regenerates api.txt from the
# package's exported declarations; `make apicheck` fails when the
# surface drifted from the committed snapshot — regenerate and review
# the diff to change the API deliberately.
api:
	$(GO) doc -all . > api.txt

apicheck:
	@$(GO) doc -all . > api.txt.got; \
	if ! diff -u api.txt api.txt.got; then \
		rm -f api.txt.got; \
		echo "public API surface changed: run 'make api' and commit the reviewed api.txt"; \
		exit 1; \
	fi; \
	rm -f api.txt.got; echo "api surface matches api.txt"

# Statement coverage with a ratchet: prints the per-package breakdown
# and fails if the total drops below COVERMIN.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	awk -v total="$$total" -v min="$(COVERMIN)" 'BEGIN { \
		if (total + 0 < min + 0) { \
			printf "coverage %.1f%% is below the %.1f%% ratchet\n", total, min; exit 1 } \
		printf "coverage %.1f%% >= %.1f%% ratchet\n", total, min }'

# Short coverage-guided fuzzing pass over every fuzz target, starting
# from the committed seed corpora. CI runs this as a smoke test; bump
# FUZZTIME for a real campaign.
fuzz:
	$(GO) test -fuzz=FuzzAsmDisasmRoundTrip -fuzztime=$(FUZZTIME) -run '^$$' ./internal/isa/
	$(GO) test -fuzz=FuzzBlockDecode -fuzztime=$(FUZZTIME) -run '^$$' ./internal/isa/
	$(GO) test -fuzz=FuzzKSBTParse -fuzztime=$(FUZZTIME) -run '^$$' ./internal/smmpatch/
	$(GO) test -fuzz=FuzzSparseMemAccess -fuzztime=$(FUZZTIME) -run '^$$' ./internal/mem/
	$(GO) test -fuzz=FuzzForkMem -fuzztime=$(FUZZTIME) -run '^$$' ./internal/mem/
	$(GO) test -fuzz=FuzzServerFrame -fuzztime=$(FUZZTIME) -run '^$$' ./internal/patchserver/
	$(GO) test -fuzz=FuzzCorpusCase -fuzztime=$(FUZZTIME) -run '^$$' ./internal/corpusgen/
	$(GO) test -fuzz=FuzzEventChannel -fuzztime=$(FUZZTIME) -run '^$$' ./internal/introspect/

# Generated-corpus differential verification. `corpussmoke` is the CI
# gate: a fixed-seed 64-case sweep under -race. `corpus` is the full
# acceptance sweep — 256 cases, every one driven end-to-end.
corpussmoke:
	$(GO) test -race -run TestGeneratedCorpusSmoke ./internal/evalharness/

corpus:
	$(GO) run ./cmd/kshot-corpus verify -seed 0xC0DE -count 256 -e2e -1

# Adversary simulation smoke: the three seeded attacker archetypes
# plus a fixed-seed subset of the campaign, under -race. The full
# 200-seed campaign ("attacker never wins silently") runs in `test`;
# reproduce any campaign failure with KSHOT_ADV_SEED=<seed>.
adversary-smoke:
	$(GO) test -race -short -run 'TestReinfectDetected|TestReplayDetected|TestGroomDetected|TestAdversaryCampaign' ./internal/adversary/

check: build vet test
