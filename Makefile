# KShot simulation build targets. `make check` is the tier-1 gate;
# `make race` adds the data-race detector over the full suite.

GO ?= go

.PHONY: all build vet test race short bench check fuzz

# Per-target budget for the fuzz smoke pass (see `fuzz` below).
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Short coverage-guided fuzzing pass over both fuzz targets, starting
# from the committed seed corpora. CI runs this as a smoke test; bump
# FUZZTIME for a real campaign.
fuzz:
	$(GO) test -fuzz=FuzzAsmDisasmRoundTrip -fuzztime=$(FUZZTIME) -run '^$$' ./internal/isa/
	$(GO) test -fuzz=FuzzKSBTParse -fuzztime=$(FUZZTIME) -run '^$$' ./internal/smmpatch/

check: build vet test
