# KShot simulation build targets. `make check` is the tier-1 gate;
# `make race` adds the data-race detector over the full suite.

GO ?= go

.PHONY: all build vet test race short bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet test
