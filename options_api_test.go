package kshot

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOptionValidationTables drives every public constructor through
// zero-value, conflicting, and boundary options: each rejection must
// be eager (no hardware simulated, no sockets opened), match
// ErrInvalidOption, and unwrap to a *OptionError naming the
// constructor.
func TestOptionValidationTables(t *testing.T) {
	dummyTargets := []RolloutTarget{{ID: "a", Domain: "r0"}, {ID: "b", Domain: "r1"}}
	dummyProv := func(ctx context.Context, tg RolloutTarget) (Patcher, error) {
		return nil, errors.New("never provisioned")
	}

	cases := []struct {
		name        string
		construct   func() error
		constructor string
	}{
		{"New/bad version", func() error {
			_, err := New(WithVersion("5.10"))
			return err
		}, "kshot.New"},
		{"New/conflicting versions", func() error {
			_, err := New(WithVersion("4.4"), WithVersion("3.14"))
			return err
		}, "kshot.New"},
		{"New/zero vcpus", func() error {
			_, err := New(WithVCPUs(0))
			return err
		}, "kshot.New"},
		{"New/negative vcpus", func() error {
			_, err := New(WithVCPUs(-4))
			return err
		}, "kshot.New"},
		{"New/empty extra files", func() error {
			_, err := New(WithExtraFiles(nil))
			return err
		}, "kshot.New"},
		{"New/empty server addr", func() error {
			_, err := New(WithServerAddr(""))
			return err
		}, "kshot.New"},
		{"New/conflicting server addrs", func() error {
			_, err := New(WithServerAddr("a:1"), WithServerAddr("b:2"))
			return err
		}, "kshot.New"},
		{"New/unknown hash", func() error {
			_, err := New(WithHashAlg(HashAlg(99)))
			return err
		}, "kshot.New"},
		{"New/nil rand", func() error {
			_, err := New(WithRand(nil))
			return err
		}, "kshot.New"},
		{"New/negative dial retries", func() error {
			_, err := New(WithDialRetries(-1))
			return err
		}, "kshot.New"},
		{"New/negative request retries", func() error {
			_, err := New(WithRequestRetries(-1))
			return err
		}, "kshot.New"},
		{"New/negative backoff", func() error {
			_, err := New(WithDialBackoff(-time.Second))
			return err
		}, "kshot.New"},
		{"New/nil option", func() error {
			_, err := New(nil)
			return err
		}, "kshot.New"},

		{"NewPatchServer/no tree provider", func() error {
			_, err := NewPatchServer()
			return err
		}, "patchserver.New"},
		{"NewPatchServer/empty listen addr", func() error {
			_, err := NewPatchServer(WithListenAddr(""), WithTreeProvider(TreeProviderFor()))
			return err
		}, "patchserver.New"},
		{"NewPatchServer/conflicting listen addrs", func() error {
			_, err := NewPatchServer(WithTreeProvider(TreeProviderFor()),
				WithListenAddr("127.0.0.1:1"), WithListenAddr("127.0.0.1:2"))
			return err
		}, "patchserver.New"},
		{"NewPatchServer/nil tree provider", func() error {
			_, err := NewPatchServer(WithTreeProvider(nil))
			return err
		}, "patchserver.New"},
		{"NewPatchServer/tree provider twice", func() error {
			_, err := NewPatchServer(WithTreeProvider(TreeProviderFor()), WithTreeProvider(TreeProviderFor()))
			return err
		}, "patchserver.New"},
		{"NewPatchServer/negative max conns", func() error {
			_, err := NewPatchServer(WithTreeProvider(TreeProviderFor()), WithServerMaxConns(-1))
			return err
		}, "patchserver.New"},
		{"NewPatchServer/negative accept wait", func() error {
			_, err := NewPatchServer(WithTreeProvider(TreeProviderFor()), WithServerAcceptWait(-time.Second))
			return err
		}, "patchserver.New"},

		{"DialPatchServer/negative dial timeout", func() error {
			_, err := DialPatchServer("127.0.0.1:1", WithClientDialTimeout(-time.Second))
			return err
		}, "patchserver.Dial"},
		{"DialPatchServer/negative retries", func() error {
			_, err := DialPatchServer("127.0.0.1:1", WithClientDialRetries(-1))
			return err
		}, "patchserver.Dial"},

		{"NewRollout/no fleet", func() error {
			_, err := NewRollout(WithCVEs("CVE-2016-0728"), WithProvisioner(dummyProv))
			return err
		}, "kshot.NewRollout"},
		{"NewRollout/duplicate targets", func() error {
			_, err := NewRollout(
				WithTargets([]RolloutTarget{{ID: "a"}, {ID: "a"}}),
				WithCVEs("CVE-2016-0728"), WithProvisioner(dummyProv))
			return err
		}, "kshot.NewRollout"},
		{"NewRollout/canary exceeds fleet", func() error {
			_, err := NewRollout(WithTargets(dummyTargets), WithCVEs("CVE-2016-0728"),
				WithProvisioner(dummyProv), WithCanarySize(3))
			return err
		}, "kshot.NewRollout"},
		{"NewRollout/fraction boundary", func() error {
			_, err := NewRollout(WithTargets(dummyTargets), WithCVEs("CVE-2016-0728"),
				WithProvisioner(dummyProv), WithFirstWaveFraction(1.01))
			return err
		}, "kshot.NewRollout"},
		{"NewRollout/growth boundary", func() error {
			_, err := NewRollout(WithTargets(dummyTargets), WithCVEs("CVE-2016-0728"),
				WithProvisioner(dummyProv), WithGrowthFactor(1.0))
			return err
		}, "kshot.NewRollout"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.construct()
			if err == nil {
				t.Fatal("constructor accepted invalid options")
			}
			if !errors.Is(err, ErrInvalidOption) {
				t.Fatalf("err = %v, want ErrInvalidOption", err)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err %v does not unwrap to *OptionError", err)
			}
			if oe.Constructor != tc.constructor {
				t.Fatalf("Constructor = %q, want %q", oe.Constructor, tc.constructor)
			}
			if oe.Option == "" || oe.Reason == "" {
				t.Fatalf("OptionError missing detail: %+v", oe)
			}
		})
	}
}

// TestOptionZeroValuesDefaulted: constructors given no optional knobs
// fall back to documented defaults rather than zero values.
func TestOptionZeroValuesDefaulted(t *testing.T) {
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Error("default listen addr did not bind")
	}

	sys, err := New(WithServerAddr(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if v := sys.Kernel.Config().Version; v != "4.4" {
		t.Errorf("default version = %q, want 4.4", v)
	}
}

// TestErrorTaxonomyWalk exercises the documented error chain of each
// public entry point: every failure class is reachable and branchable
// with errors.Is / errors.As, no message matching required.
func TestErrorTaxonomyWalk(t *testing.T) {
	t.Run("apply fetch failure", func(t *testing.T) {
		entry, _ := LookupCVE("CVE-2016-0728")
		srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
		if err != nil {
			t.Fatal(err)
		}
		srv.RegisterPatch(entry.SourcePatch())
		sys, err := New(
			WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
			WithServerAddr(srv.Addr()),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		srv.Close() // kill the server: the fetch must fail typed

		_, err = sys.Apply(context.Background(), entry.CVE)
		if !errors.Is(err, ErrFetch) {
			t.Fatalf("apply against dead server: %v, want ErrFetch", err)
		}
	})

	t.Run("rollout canary halt", func(t *testing.T) {
		roll, err := NewRollout(
			WithTargets([]RolloutTarget{{ID: "a", Domain: "r0"}, {ID: "b", Domain: "r1"}}),
			WithCVEs("CVE-2016-0728"),
			WithProvisioner(func(ctx context.Context, tg RolloutTarget) (Patcher, error) {
				return nil, errors.New("no capacity")
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		_, err = roll.Run(context.Background())
		if !errors.Is(err, ErrRolloutHalted) {
			t.Fatalf("err = %v, want ErrRolloutHalted", err)
		}
		if !errors.Is(err, ErrWaveRolledBack) {
			t.Fatalf("err = %v, should also match ErrWaveRolledBack", err)
		}
		var he *HaltError
		if !errors.As(err, &he) || he.Wave != 0 {
			t.Fatalf("err %v should unwrap to *HaltError at wave 0", err)
		}
		var we *WaveError
		if !errors.As(err, &we) || len(we.Unhealthy) == 0 {
			t.Fatalf("err %v should unwrap to *WaveError with members", err)
		}
	})

	t.Run("rollout state mismatch", func(t *testing.T) {
		store := &RolloutMemStore{}
		st := &RolloutState{Seed: 1, CVEs: []string{"CVE-2016-0728"},
			Targets: []TargetState{{ID: "a", Domain: "r0"}}}
		if err := store.Save(st); err != nil {
			t.Fatal(err)
		}
		_, err := NewRollout(
			WithTargets([]RolloutTarget{{ID: "a", Domain: "r0"}}),
			WithCVEs("CVE-2016-0728"),
			WithProvisioner(func(ctx context.Context, tg RolloutTarget) (Patcher, error) {
				return nil, errors.New("unused")
			}),
			WithSeed(2),
			WithStateStore(store),
		)
		if !errors.Is(err, ErrStateMismatch) {
			t.Fatalf("err = %v, want ErrStateMismatch", err)
		}
	})

	t.Run("applyall invalid tuning", func(t *testing.T) {
		entry, _ := LookupCVE("CVE-2016-0728")
		srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		sys, err := New(
			WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
			WithServerAddr(srv.Addr()),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		_, err = sys.ApplyAll(context.Background(), []string{entry.CVE}, WithBatchSize(0))
		if !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("ApplyAll(WithBatchSize(0)) err = %v, want ErrInvalidOption", err)
		}
	})
}
