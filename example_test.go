package kshot_test

import (
	"context"
	"fmt"
	"log"

	"kshot"
)

// ExampleNew boots one simulated target and live-patches Dirty COW —
// the paper's Figure 2 pipeline end to end.
func ExampleNew() {
	entry, _ := kshot.LookupCVE("CVE-2016-5195")

	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	rep, err := sys.Apply(context.Background(), entry.CVE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("patched", rep.ID)
	// Output: patched CVE-2016-5195
}

// ExampleNewPatchServer starts the trusted build server with explicit
// options: the kernel sources to build from and a bounded build cache.
func ExampleNewPatchServer() {
	entry, _ := kshot.LookupCVE("CVE-2016-0728")

	srv, err := kshot.NewPatchServer(
		kshot.WithTreeProvider(kshot.TreeProviderFor(entry)),
		kshot.WithListenAddr("127.0.0.1:0"),
		kshot.WithServerCacheCapacity(32),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	fmt.Println("listening:", srv.Addr() != "")
	// Output: listening: true
}

// ExampleNewRollout drives a CVE batch across a small fleet in staged
// canary waves: every target boots its own simulated machine, fetches
// from the shared patch server, and each wave is health-gated before
// the next widens.
func ExampleNewRollout() {
	entry, _ := kshot.LookupCVE("CVE-2016-0728")
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	fleet := []kshot.RolloutTarget{
		{ID: "web-1", Domain: "rack-a"}, {ID: "web-2", Domain: "rack-a"},
		{ID: "db-1", Domain: "rack-b"}, {ID: "db-2", Domain: "rack-b"},
	}
	roll, err := kshot.NewRollout(
		kshot.WithTargets(fleet),
		kshot.WithCVEs(entry.CVE),
		kshot.WithProvisioner(kshot.SystemProvisioner(srv.Addr(),
			kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}))),
		kshot.WithSeed(1),
		kshot.WithFirstWaveFraction(0.25),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := roll.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patched %d/%d targets\n", res.Patched, len(fleet))
	// Output: patched 4/4 targets
}

// ExampleNewWorkload runs the mixed whole-system workload while a
// patch lands, as the paper's under-load evaluation does.
func ExampleNewWorkload() {
	entry, _ := kshot.LookupCVE("CVE-2014-0196")
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	w := kshot.NewWorkload(sys, kshot.WorkloadMixed)
	if err := w.Start(); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		log.Fatal(err)
	}
	stats := w.Stop()
	fmt.Println("workload errors during live patch:", stats.Errors)
	// Output: workload errors during live patch: 0
}
