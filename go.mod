module kshot

go 1.22
