// Command kshot-cvelist prints the paper's Table I: the 30-CVE
// benchmark suite with affected functions, patch sizes, Type 1/2/3
// classification, and the measured binary payload each patch produces
// on the simulated kernel.
//
// Usage:
//
//	kshot-cvelist [-quick]
//
// -quick skips building the binary patches (no payload column).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kshot/internal/cvebench"
	"kshot/internal/evalharness"
	"kshot/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-cvelist:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kshot-cvelist", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "skip binary patch builds (omit payload column)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		t := report.NewTable("TABLE I: Types and sizes of indicative kernel security vulnerability patches",
			"CVE Number", "Affected Functions", "Size (LoC)", "Type")
		for _, e := range cvebench.All() {
			t.AddRow(e.CVE, strings.Join(e.Functions, ", "), fmt.Sprintf("%d", e.SizeLoC), e.TypesString())
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		for _, e := range cvebench.All() {
			fmt.Printf("%s: %s\n", e.CVE, e.Summary)
		}
		return nil
	}
	t, err := evalharness.Table1()
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
