package main

import (
	"strings"
	"testing"
)

func TestSymbolsListing(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-symbols"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{"sys_compute", "jiffies", "object", "func", "traced"} {
		if !strings.Contains(out.String(), probe) {
			t.Errorf("symbols output missing %q", probe)
		}
	}
}

func TestSingleFunctionDisassembly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-func", "sys_compute"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ret") || !strings.Contains(s, "__fentry__") {
		t.Errorf("disassembly incomplete:\n%s", s)
	}
}

func TestCVEDiffView(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cve", "CVE-2017-17053", "-diff"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "pre-patch") || !strings.Contains(s, "post-patch") {
		t.Errorf("diff output missing sections:\n%.400s", s)
	}
	if !strings.Contains(s, "init_new_context_site1") {
		t.Errorf("implicated call site missing from diff")
	}
}

func TestPostKernelView(t *testing.T) {
	var pre, post strings.Builder
	if err := run([]string{"-cve", "CVE-2014-0196", "-func", "n_tty_write"}, &pre); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cve", "CVE-2014-0196", "-post", "-func", "n_tty_write"}, &post); err != nil {
		t.Fatal(err)
	}
	if pre.String() == post.String() {
		t.Error("-post produced identical disassembly")
	}
}

func TestFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cve", "CVE-0000-0000"}, &out); err == nil {
		t.Error("unknown CVE accepted")
	}
	if err := run([]string{"-diff"}, &out); err == nil {
		t.Error("-diff without -cve accepted")
	}
	if err := run([]string{"-version", "9.9", "-symbols"}, &out); err == nil {
		t.Error("bad version accepted")
	}
	if err := run([]string{"-func", "nosuch"}, &out); err == nil {
		t.Error("missing function accepted")
	}
}
