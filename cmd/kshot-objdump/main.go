// Command kshot-objdump disassembles simulated kernel images the way
// objdump -d does for real ones: symbol table, per-function listings
// with resolved branch targets, and (optionally) the binary diff a CVE
// fix produces. It exists to debug patches — compare the pre and post
// views of an affected function, or inspect the trampoline a live
// patch would install.
//
// Usage:
//
//	kshot-objdump [-version 4.4] [-cve CVE-2014-0196] [-post] [-func name] [-symbols]
//	kshot-objdump -cve CVE-2016-5195 -diff        # changed functions only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kshot/internal/binmatch"
	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kernel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-objdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kshot-objdump", flag.ContinueOnError)
	version := fs.String("version", "4.4", "kernel version (3.14 or 4.4)")
	cve := fs.String("cve", "", "include this CVE's vulnerable subsystem")
	post := fs.Bool("post", false, "build the post-patch kernel (requires -cve)")
	fnName := fs.String("func", "", "disassemble only this function")
	symbols := fs.Bool("symbols", false, "print the symbol table only")
	diff := fs.Bool("diff", false, "print only the functions the CVE's fix changes (requires -cve)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tree, err := kernel.BaseTree(*version)
	if err != nil {
		return err
	}
	var entry *cvebench.Entry
	if *cve != "" {
		e, ok := cvebench.Get(*cve)
		if !ok {
			return fmt.Errorf("unknown CVE %q", *cve)
		}
		entry = e
		tree.AddFile(e.File, e.Vuln)
	}
	if (*post || *diff) && entry == nil {
		return fmt.Errorf("-post/-diff require -cve")
	}

	img, _, err := tree.Build()
	if err != nil {
		return err
	}

	if *diff {
		postTree := tree.Clone()
		if err := postTree.Apply(entry.SourcePatch()); err != nil {
			return err
		}
		postImg, _, err := postTree.Build()
		if err != nil {
			return err
		}
		d, err := binmatch.DiffImages(img, postImg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "binary diff for %s on kernel %s:\n", entry.CVE, *version)
		for _, name := range d.Changed {
			fmt.Fprintf(out, "\n--- %s (pre-patch) ---\n", name)
			if err := dumpFunc(out, img, name); err != nil {
				return err
			}
			fmt.Fprintf(out, "\n+++ %s (post-patch) +++\n", name)
			if err := dumpFunc(out, postImg, name); err != nil {
				return err
			}
		}
		for _, name := range d.Added {
			fmt.Fprintf(out, "\n+++ %s (new function) +++\n", name)
			if err := dumpFunc(out, postImg, name); err != nil {
				return err
			}
		}
		if len(d.Removed) > 0 {
			fmt.Fprintf(out, "\nremoved: %s\n", strings.Join(d.Removed, ", "))
		}
		return nil
	}

	if *post {
		postTree := tree.Clone()
		if err := postTree.Apply(entry.SourcePatch()); err != nil {
			return err
		}
		img, _, err = postTree.Build()
		if err != nil {
			return err
		}
	}

	if *symbols {
		fmt.Fprintf(out, "%-16s %-8s %-6s %-7s name\n", "address", "size", "kind", "traced")
		for _, s := range img.Symbols.All() {
			kind := "func"
			if s.Kind == isa.SymObject {
				kind = "object"
			}
			fmt.Fprintf(out, "%#-16x %-8d %-6s %-7v %s\n", s.Addr, s.Size, kind, s.Traced, s.Name)
		}
		return nil
	}

	if *fnName != "" {
		return dumpFunc(out, img, *fnName)
	}
	for _, s := range img.Symbols.Funcs() {
		fmt.Fprintf(out, "\n%s:\n", s.Name)
		if err := dumpFunc(out, img, s.Name); err != nil {
			return err
		}
	}
	return nil
}

// dumpFunc prints one function objdump-style: address, raw bytes,
// mnemonic, with branch targets resolved through the symbol table.
func dumpFunc(out io.Writer, img *isa.Image, name string) error {
	sym, ok := img.Symbols.Lookup(name)
	if !ok || sym.Kind != isa.SymFunc {
		return fmt.Errorf("no function %q", name)
	}
	code, err := img.FuncBytes(name)
	if err != nil {
		return err
	}
	decoded, err := isa.Disassemble(code, sym.Addr)
	if err != nil {
		return err
	}
	for _, d := range decoded {
		off := d.Addr - img.TextBase
		raw := img.Text[off : off+uint64(d.Len)]
		note := ""
		if tgt, isBranch := d.BranchTarget(); isBranch {
			if ts, ok := img.Symbols.At(tgt); ok {
				if ts.Addr == tgt {
					note = fmt.Sprintf("  ; -> %s", ts.Name)
				} else {
					note = fmt.Sprintf("  ; -> %s+%#x", ts.Name, tgt-ts.Addr)
				}
			} else {
				note = fmt.Sprintf("  ; -> %#x", tgt)
			}
		}
		fmt.Fprintf(out, "  %#10x:  %-22s %s%s\n", d.Addr, hexBytes(raw), d.Inst.String(), note)
	}
	return nil
}

func hexBytes(b []byte) string {
	parts := make([]string, len(b))
	for i, x := range b {
		parts[i] = fmt.Sprintf("%02x", x)
	}
	return strings.Join(parts, " ")
}
