package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable4Only(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "TABLE IV") || !strings.Contains(s, "KShot") {
		t.Errorf("table4 output incomplete:\n%s", s)
	}
	if strings.Contains(s, "TABLE II") {
		t.Error("unselected experiment ran")
	}
}

func TestTable1WritesOutputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	var out strings.Builder
	if err := run([]string{"-table1", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "CVE-2014-0196") {
		t.Error("output file missing table content")
	}
	if out.String() == "" {
		t.Error("stdout empty despite -o")
	}
}

func TestFigureCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-fig5", "-iters", "1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "x,switch,key gen,decrypt,verify,apply") {
		t.Errorf("CSV header missing:\n%.300s", s)
	}
	if !strings.Contains(s, "CVE-2014-4608") {
		t.Error("CSV rows missing")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
