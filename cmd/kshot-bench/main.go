// Command kshot-bench regenerates the paper's evaluation artifacts —
// every table and figure of §VI — on the simulated platform and prints
// them (optionally into a file suitable for EXPERIMENTS.md).
//
// Usage:
//
//	kshot-bench -all                 # everything (RQ1 sweep included)
//	kshot-bench -table2 -table3      # size sweeps only
//	kshot-bench -fig4 -fig5 -iters 5 # figures, 5 runs averaged
//	kshot-bench -rq1 -version 3.14   # applicability sweep on 3.14
//	kshot-bench -overhead -patches 1000
//	kshot-bench -trace               # per-CVE phase breakdown + metrics + trace
//
// Output is plain text; pass -o FILE to also write it to a file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kshot/internal/evalharness"
	"kshot/internal/kcrypto"
	"kshot/internal/report"
	"kshot/internal/timing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kshot-bench", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every experiment")
		table1    = fs.Bool("table1", false, "Table I: benchmark suite")
		table2    = fs.Bool("table2", false, "Table II: SGX breakdown by size")
		table3    = fs.Bool("table3", false, "Table III: SMM breakdown by size")
		fig4      = fs.Bool("fig4", false, "Figure 4: SGX time per CVE")
		fig5      = fs.Bool("fig5", false, "Figure 5: SMM time per CVE")
		table4    = fs.Bool("table4", false, "Table IV: general comparison")
		table5    = fs.Bool("table5", false, "Table V: kernel patching comparison")
		rq1       = fs.Bool("rq1", false, "RQ1: patch all 30 CVEs")
		pipeline  = fs.Bool("pipeline", false, "pipelined ApplyAll vs serial Apply")
		overhead  = fs.Bool("overhead", false, "whole-system overhead")
		trace     = fs.Bool("trace", false, "per-CVE phase breakdown with metrics and event trace")
		fleet     = fs.Bool("fleet", false, "fleet distribution: cold vs warm build-cache delivery")
		rollout   = fs.Bool("rollout", false, "fleet rollout: staged canary waves across simulated targets")
		provision = fs.Bool("provision", false, "provisioning throughput: cold boot vs template fork")
		dispatch  = fs.Bool("dispatch", false, "execution-engine comparison: oracle interpreter vs predecoded blocks")
		dispops   = fs.Uint64("dispatch-ops", 2000, "workload operations per engine for -dispatch")
		detect    = fs.Bool("detect", false, "introspection: tamper-detection latency vs sweep period, plus overhead")
		dettrials = fs.Int("detect-trials", 20, "tamper injections per sweep period for -detect")
		detops    = fs.Uint64("detect-ops", 20000, "workload operations for the -detect overhead columns")
		clients   = fs.Int("clients", 16, "fleet size for -fleet")
		targets   = fs.Int("targets", 500, "fleet size for -rollout")
		domains   = fs.Int("domains", 4, "failure domains for -rollout")
		rollcves  = fs.Int("rollout-cves", 2, "CVE batch size for -rollout")
		rollcold  = fs.Bool("rollout-cold", false, "cold-boot every -rollout target instead of template-forking")
		provcold  = fs.Int("prov-cold", 5, "cold boots to average for -provision")
		provforks = fs.Int("prov-forks", 200, "template forks to average for -provision")
		iters     = fs.Int("iters", 3, "repetitions per measurement")
		patches   = fs.Int("patches", 100, "patch storm size for -overhead")
		batch     = fs.Int("batch", 8, "batch size for -pipeline")
		workers   = fs.Int("workers", 4, "fetch workers for -pipeline")
		version   = fs.String("version", "4.4", "kernel version for -rq1/-pipeline")
		outFile   = fs.String("o", "", "also write output to this file")
		csv       = fs.Bool("csv", false, "emit figures as CSV instead of ASCII bars")
		jsonOut   = fs.Bool("json", false, "emit one machine-readable JSON document instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	out := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	selected := *table1 || *table2 || *table3 || *fig4 || *fig5 || *table4 || *table5 || *rq1 || *pipeline || *overhead || *trace || *fleet || *rollout || *provision || *dispatch || *detect
	if *all || !selected {
		*table1, *table2, *table3, *fig4, *fig5, *table4, *table5, *rq1, *pipeline, *overhead, *trace, *fleet, *rollout, *provision, *dispatch, *detect =
			true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true
	}

	// In JSON mode, data-bearing experiments accumulate here and are
	// emitted as one document; progress chatter and the qualitative
	// text tables (I and IV) are suppressed so the output parses.
	results := make(map[string]any)
	progress := func(format string, a ...any) {
		if !*jsonOut {
			fmt.Fprintf(out, format, a...)
		}
	}

	if *table1 && !*jsonOut {
		t, err := evalharness.Table1()
		if err != nil {
			return err
		}
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	var sizePoints []evalharness.SizePoint
	if *table2 || *table3 {
		progress("running size sweep (%d iters per size)...\n", *iters)
		var err error
		sizePoints, err = evalharness.RunSizeSweep(*iters, kcrypto.HashSHA256)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["size_sweep"] = sizePoints
		}
	}
	if *table2 && !*jsonOut {
		if err := evalharness.Table2(sizePoints, *iters).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if *table3 && !*jsonOut {
		if err := evalharness.Table3(sizePoints, *iters).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *fig4 || *fig5 {
		progress("running whole-system CVE measurements (%d iters per CVE)...\n", *iters)
		points, err := evalharness.RunFigureCVEs(*iters)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["figure_cves"] = points
		}
		render := func(f *report.Figure) error {
			if *csv {
				return f.RenderCSV(out)
			}
			return f.Render(out)
		}
		if *jsonOut {
			render = func(*report.Figure) error { return nil }
		}
		if *fig4 {
			if err := render(evalharness.Figure4(points)); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if *fig5 {
			if err := render(evalharness.Figure5(points)); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if *table4 && !*jsonOut {
		if err := evalharness.Table4().Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if *table5 {
		rows, err := evalharness.RunTable5("CVE-2014-4157")
		if err != nil {
			return err
		}
		if *jsonOut {
			results["table5"] = rows
		} else {
			if err := evalharness.Table5(rows).Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if *rq1 {
		progress("running RQ1 sweep on kernel %s (30 CVEs)...\n", *version)
		rows, err := evalharness.RunRQ1(*version, func(r evalharness.RQ1Row) {
			progress("  %-18s pause %sus  %v\n", r.CVE, report.Us(r.PauseVirtual), r.Passed())
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			results["rq1"] = rows
		} else {
			if err := evalharness.RQ1Table(rows).Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if *pipeline {
		progress("running pipelined ApplyAll vs serial (batch %d, %d workers)...\n", *batch, *workers)
		p, err := evalharness.RunPipelinedComparison(*version, *batch, *workers)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["pipeline"] = p
		} else {
			if err := evalharness.PipelinedTable(p, *batch, *workers).Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if *trace {
		progress("running phase-level observability breakdown (30 CVEs, deterministic clock)...\n")
		b, err := evalharness.RunPhaseBreakdown(evalharness.PhaseOptions{
			Version:   *version,
			BatchSize: *batch,
			SyncFetch: true,
			Wall:      timing.NewFakeWall(),
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			// Hooks holds live tracer state; the rows and counters are
			// the machine-readable part.
			results["phases"] = map[string]any{
				"rows": b.Rows, "waves": b.Waves, "smis": b.SMIs, "smm_pause": b.SMMPause,
			}
		} else {
			if err := evalharness.RenderPhaseReport(out, b); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if *fleet {
		progress("running fleet distribution (cold vs warm cache, %d clients, %d rounds)...\n", *clients, *iters)
		fr, err := evalharness.RunFleetBench(*clients, *iters)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["fleet"] = fr
		} else {
			fmt.Fprintf(out, "Fleet distribution (%d clients, one CVE, real TCP loopback):\n", fr.Clients)
			fmt.Fprintf(out, "  cold cache: %v per request (every wave rebuilds both kernels)\n", fr.ColdPer)
			fmt.Fprintf(out, "  warm cache: %v per request (cached artifact, per-session encryption only)\n", fr.WarmPer)
			fmt.Fprintf(out, "  speedup: %.1fx; kernel builds: %d for %d requests served\n",
				fr.Speedup, fr.Builds, fr.Requests)
			fmt.Fprintln(out)
		}
	}

	if *rollout {
		mode := "template-fork"
		if *rollcold {
			mode = "cold-boot"
		}
		progress("running fleet rollout (%d targets, %d domains, %d CVEs, staged waves, %s provisioning)...\n",
			*targets, *domains, *rollcves, mode)
		rr, err := evalharness.RunRolloutBenchOpts(evalharness.RolloutBenchOptions{
			Targets: *targets, Domains: *domains, CVEs: *rollcves, Concurrency: 4,
			TemplateFork: !*rollcold,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			results["rollout"] = rr
		} else {
			fmt.Fprintf(out, "Fleet rollout (%d targets in %d domains, %d CVEs, canary → %%-waves, %s provisioning):\n",
				rr.Targets, rr.Domains, rr.CVEs, mode)
			fmt.Fprintf(out, "  waves: %d; patched %d, failed %d, rolled back %d\n",
				rr.Waves, rr.Patched, rr.Failed, rr.RolledBk)
			fmt.Fprintf(out, "  throughput: %.1f targets/s (wall %v)\n", rr.TargetsPerSec, rr.Wall)
			fmt.Fprintf(out, "  provisioning: %v mean per target (%.0f systems/s)\n",
				rr.ProvisionMean, rr.ProvisionPerSec)
			if rr.TemplateFork {
				fmt.Fprintf(out, "  template cache: %d misses, %d hits, %d forks\n",
					rr.TemplateMisses, rr.TemplateHits, rr.TemplateForks)
			}
			fmt.Fprintf(out, "  per-target virtual SMM pause: mean %sus, p99 %sus\n",
				report.Us(rr.MeanPause), report.Us(rr.P99Pause))
			fmt.Fprintln(out)
		}
	}

	if *provision {
		progress("running provisioning throughput (%d cold boots vs %d template forks)...\n",
			*provcold, *provforks)
		pr, err := evalharness.RunProvisionBench(*provcold, *provforks)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["provision"] = pr
		} else {
			fmt.Fprintf(out, "Provisioning throughput (one configuration, %d cold boots vs %d forks):\n",
				pr.ColdBoots, pr.Forks)
			fmt.Fprintf(out, "  cold boot:     %v per system (%.0f systems/s)\n", pr.ColdMean, pr.ColdPerSec)
			fmt.Fprintf(out, "  template fork: %v per system (%.0f systems/s), %.1fx\n", pr.ForkMean, pr.ForkPerSec, pr.Speedup)
			fmt.Fprintf(out, "  template boot (one-time): %v\n", pr.TemplateBoot)
			fmt.Fprintf(out, "  fresh-fork resident split: %d B shared, %d B private\n", pr.SharedBytes, pr.PrivateBytes)
			fmt.Fprintln(out)
		}
	}

	if *dispatch {
		progress("running execution-engine comparison (oracle vs blocks, %d ops each)...\n", *dispops)
		dr, err := evalharness.RunDispatchBench("CVE-2014-4157", *dispops)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["dispatch"] = dr
		} else {
			fmt.Fprintf(out, "Execution engine (workload under patch, %s, %d ops per engine):\n", dr.CVE, dr.Oracle.Ops)
			fmt.Fprintf(out, "  oracle (decode-switch): %.0f ops/s (wall %v)\n", dr.Oracle.OpsPerSec, dr.Oracle.Wall)
			fmt.Fprintf(out, "  blocks (predecoded):    %.0f ops/s (wall %v)\n", dr.Blocks.OpsPerSec, dr.Blocks.Wall)
			fmt.Fprintf(out, "  speedup: %.1fx; virtual stage metrics bit-identical across engines\n", dr.Speedup)
			fmt.Fprintln(out)
		}
	}

	if *detect {
		progress("running tamper-detection latency (%d injections per sweep period)...\n", *dettrials)
		dr, err := evalharness.RunDetectionBench(*dettrials, nil, *detops)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["detection"] = dr
		} else {
			fmt.Fprintf(out, "Introspection detection latency (%s, %d tamper injections per period):\n",
				dr.CVE, *dettrials)
			fmt.Fprintf(out, "  %-10s %12s %12s %12s %8s\n", "period", "p50", "p99", "mean", "sweeps")
			for _, p := range dr.Periods {
				fmt.Fprintf(out, "  %-10v %12v %12v %12v %8d\n", p.Period, p.P50, p.P99, p.Mean, p.Sweeps)
			}
			fmt.Fprintf(out, "  workload (%d ops): %.0f ops/s off, %.0f ops/s sweeping; overhead %.1f%%\n",
				dr.WorkloadOps, dr.BaselineOpsPerSec, dr.EnabledOpsPerSec, dr.OverheadPct)
			fmt.Fprintln(out)
		}
	}

	if *overhead {
		progress("running whole-system overhead (%d-patch storm)...\n", *patches)
		res, err := evalharness.RunOverhead(*patches, 2*time.Second)
		if err != nil {
			return err
		}
		if *jsonOut {
			results["overhead"] = res
			return emitJSON(out, results)
		}
		fmt.Fprintf(out, "Sysbench-style workload overhead (§VI-C3):\n")
		fmt.Fprintf(out, "  baseline:   %d ops (%.0f ops/s)\n", res.Baseline.Ops, res.Baseline.OpsPerSec())
		fmt.Fprintf(out, "  with storm: %d ops (%.0f ops/s)\n", res.Disturbed.Ops, res.Disturbed.OpsPerSec())
		fmt.Fprintf(out, "  wall-clock overhead: %.1f%% (simulation-bound; see EXPERIMENTS.md)\n", res.Overhead*100)
		fmt.Fprintf(out, "  virtual OS pause per patch: %sus; pause fraction: %.3f%%\n",
			report.Us(res.PausePerOp), res.VirtualPauseFraction*100)
	}
	if *jsonOut {
		return emitJSON(out, results)
	}
	return nil
}

// emitJSON writes the accumulated experiment results as one indented
// JSON document. Durations are encoded as integer nanoseconds.
func emitJSON(out io.Writer, results map[string]any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
