package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshot"
)

func TestHealthyRollout(t *testing.T) {
	if testing.Short() {
		t.Skip("full rollout skipped in -short mode")
	}
	var out strings.Builder
	err := run([]string{
		"-targets", "4", "-domains", "2", "-cves", "CVE-2016-0728",
		"-first-frac", "0.25",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "plan: ") || !strings.Contains(s, "canary 1") {
		t.Errorf("plan line missing:\n%s", s)
	}
	if !strings.Contains(s, "4 patched, 0 failed, 0 rolled back") {
		t.Errorf("accounting line wrong:\n%s", s)
	}
	if strings.Contains(s, "HALTED") {
		t.Errorf("healthy rollout reported halted:\n%s", s)
	}
}

func TestChaosRolloutWithState(t *testing.T) {
	if testing.Short() {
		t.Skip("full rollout skipped in -short mode")
	}
	state := filepath.Join(t.TempDir(), "roll.gob")
	var out strings.Builder
	// Chaos that refuses every SMI on every target: the canary rolls
	// back and the rollout halts with wave-granular state persisted.
	err := run([]string{
		"-targets", "4", "-domains", "2", "-cves", "CVE-2016-0728",
		"-first-frac", "0.25", "-chaos-frac", "1", "-state", state,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ROLLED BACK") || !strings.Contains(s, "HALTED") {
		t.Errorf("canary chaos should roll back and halt:\n%s", s)
	}
	if _, err := os.Stat(state); err != nil {
		t.Errorf("state file not persisted: %v", err)
	}
}

func TestUnknownCVERejected(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-cves", "CVE-0000-0000"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown CVE") {
		t.Errorf("want unknown-CVE error, got %v", err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("want flag parse error, got nil")
	}
}

func TestInvalidOptionSurfaced(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-targets", "0"}, &out)
	if err == nil {
		t.Fatal("want option validation error, got nil")
	}
	if !strings.Contains(err.Error(), "kshot.NewRollout") {
		t.Errorf("error should carry the constructor name, got %v", err)
	}
	if !errors.Is(err, kshot.ErrInvalidOption) {
		t.Errorf("error should be ErrInvalidOption, got %v", err)
	}
}
