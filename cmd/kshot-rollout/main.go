// Command kshot-rollout drives a staged fleet rollout: one
// coordinator patching a CVE batch across N simulated target machines
// in canary → percentage → exponentially widening waves, each wave
// health-gated on the targets' own metrics and rolled back when the
// gate fails. Targets are spread across failure domains; no wave ever
// carries a quorum of one domain.
//
// Usage:
//
//	kshot-rollout -targets 32 -domains 4 -cves CVE-2016-0728,CVE-2014-0196
//	kshot-rollout -targets 64 -chaos-frac 0.03 -seed 7   # seeded mid-SMI chaos
//	kshot-rollout -state /tmp/roll.gob                   # crash-resumable
//
// With -state, rollout progress persists after every wave: rerunning
// the same command resumes where the previous coordinator stopped
// instead of re-patching completed targets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"kshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-rollout:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kshot-rollout", flag.ContinueOnError)
	targets := fs.Int("targets", 24, "fleet size")
	domains := fs.Int("domains", 4, "failure domains the fleet spans")
	cves := fs.String("cves", "CVE-2016-0728,CVE-2014-0196", "comma-separated CVE batch")
	seed := fs.Int64("seed", 1, "determinism root for wave plan and chaos")
	canary := fs.Int("canary", 1, "canary wave size")
	firstFrac := fs.Float64("first-frac", 0.05, "fleet fraction in the first post-canary wave")
	growth := fs.Float64("growth", 2.0, "wave size growth factor")
	concurrency := fs.Int("concurrency", 4, "targets patched in parallel per wave")
	pauseBudget := fs.Duration("pause-budget", 0, "per-target virtual SMM pause budget (0 = unlimited)")
	statePath := fs.String("state", "", "persist rollout state to this file (enables crash resume)")
	chaosFrac := fs.Float64("chaos-frac", 0, "fraction of the fleet that refuses SMIs (seeded chaos)")
	chaosSMIs := fs.Int("chaos-smis", 64, "SMI deliveries each chaotic target refuses")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var entries []*kshot.CVE
	var ids []string
	files := map[string]string{}
	for _, id := range strings.Split(*cves, ",") {
		id = strings.TrimSpace(id)
		e, ok := kshot.LookupCVE(id)
		if !ok {
			return fmt.Errorf("unknown CVE %q (see kshot-cvelist)", id)
		}
		entries = append(entries, e)
		ids = append(ids, id)
		files[e.File] = e.Vuln
	}

	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entries...)))
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	fmt.Fprintf(out, "patch server on %s; fleet of %d targets across %d domains\n",
		srv.Addr(), *targets, *domains)

	fleet := make([]kshot.RolloutTarget, *targets)
	for i := range fleet {
		fleet[i] = kshot.RolloutTarget{
			ID:     fmt.Sprintf("node-%03d", i),
			Domain: fmt.Sprintf("dom-%d", i%*domains),
		}
	}

	opts := []kshot.RolloutOption{
		kshot.WithTargets(fleet),
		kshot.WithCVEs(ids...),
		kshot.WithProvisioner(kshot.SystemProvisioner(srv.Addr(), kshot.WithExtraFiles(files))),
		kshot.WithSeed(*seed),
		kshot.WithCanarySize(*canary),
		kshot.WithFirstWaveFraction(*firstFrac),
		kshot.WithGrowthFactor(*growth),
		kshot.WithWaveConcurrency(*concurrency),
		kshot.WithProgress(func(wr kshot.WaveResult) {
			verdict := "healthy"
			if wr.RolledBack {
				verdict = fmt.Sprintf("ROLLED BACK (unhealthy: %s)", strings.Join(wr.Unhealthy, ", "))
			}
			resumed := ""
			if wr.Resumed > 0 {
				resumed = fmt.Sprintf(", %d resumed", wr.Resumed)
			}
			fmt.Fprintf(out, "  wave %d: %d targets%s, mean downtime %v — %s\n",
				wr.Index, len(wr.Targets), resumed, wr.MeanDowntime, verdict)
		}),
	}
	if *pauseBudget > 0 {
		opts = append(opts, kshot.WithPauseBudget(*pauseBudget))
	}
	if *statePath != "" {
		opts = append(opts, kshot.WithStateStore(kshot.NewRolloutFileStore(*statePath)))
	}
	if *chaosFrac > 0 {
		opts = append(opts, kshot.WithTargetFaults(
			kshot.FaultFraction(*seed, *chaosFrac, kshot.SMIFaults(*chaosSMIs)...)))
	}

	roll, err := kshot.NewRollout(opts...)
	if err != nil {
		return err
	}
	plan := roll.Plan()
	fmt.Fprintf(out, "plan: %d waves (canary %d", len(plan), len(plan[0].Targets))
	for _, w := range plan[1:] {
		fmt.Fprintf(out, " → %d", len(w.Targets))
	}
	fmt.Fprintln(out, ")")

	start := time.Now()
	res, runErr := roll.Run(context.Background())
	wall := time.Since(start)

	fmt.Fprintf(out, "rollout finished in %v: %d patched, %d failed, %d rolled back",
		wall, res.Patched, res.Failed, res.RolledBack)
	if res.Baseline > 0 {
		fmt.Fprintf(out, " (canary baseline %v)", res.Baseline)
	}
	fmt.Fprintln(out)

	switch {
	case runErr == nil:
	case errors.Is(runErr, kshot.ErrRolloutHalted):
		fmt.Fprintln(out, "HALTED:", runErr)
	case errors.Is(runErr, kshot.ErrWaveRolledBack):
		fmt.Fprintln(out, "completed with rolled-back waves:", runErr)
	default:
		return runErr
	}
	return nil
}
