// Command kshot-patchserver runs KShot's remote Patch Server: the
// trusted build machine that verifies target enclaves, rebuilds
// kernels with each target's exact configuration, and serves encrypted
// function-level binary patches for the full CVE benchmark catalogue.
//
// Usage:
//
//	kshot-patchserver [-addr 127.0.0.1:7714] [-max-conns N] [-idle 2m]
//	                  [-cache 64] [-obs 127.0.0.1:7780]
//	                  [-drain-timeout 10s]
//
// Targets (kshotd, or programs built on the kshot package) connect,
// upload their OS information and enclave measurement, and fetch
// patches by CVE identifier. Built artifacts are cached and shared
// across targets with the same kernel configuration; per-session
// encryption stays per-client. On Ctrl-C the server drains: it stops
// accepting, lets in-flight sessions finish (bounded by -drain-timeout
// and the idle deadline), then force-closes whatever remains.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/obs"
	"kshot/internal/patchserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-patchserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kshot-patchserver", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7714", "listen address")
		maxConns = fs.Int("max-conns", 0, "max concurrently served connections (0 = unlimited)")
		wait     = fs.Duration("accept-wait", 0, "how long a full gate waits before refusing a connection (0 = backpressure only)")
		idle     = fs.Duration("idle", patchserver.DefaultIdleTimeout, "per-connection idle deadline (0 disables)")
		cacheCap = fs.Int("cache", patchserver.DefaultCacheCapacity, "build-cache entries (negative disables retention)")
		obsAddr  = fs.String("obs", "", "serve /metrics and /trace on this address (empty disables)")
		drainFor = fs.Duration("drain-timeout", 10*time.Second, "graceful drain bound at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []patchserver.ServerOption{
		patchserver.WithIdleTimeout(*idle),
		patchserver.WithMaxConns(*maxConns),
		patchserver.WithAcceptWait(*wait),
		patchserver.WithCacheCapacity(*cacheCap),
	}
	var hooks *obs.Hooks
	if *obsAddr != "" {
		hooks = obs.NewHooks(obs.DefaultTraceCapacity, nil)
		opts = append(opts, patchserver.WithServerObserver(hooks))
	}

	// The server's source view includes every benchmark subsystem, as
	// a distro vendor's tree would.
	all := cvebench.All()
	for _, e := range cvebench.FigureSix() {
		if e.FigureOnly {
			all = append(all, e)
		}
	}
	srv, err := patchserver.NewServer(*addr, cvebench.TreeProviderFor(all...), opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, e := range all {
		srv.RegisterPatch(e.SourcePatch())
	}

	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, hooks.Mux()) }()
		fmt.Printf("observability on http://%s/metrics and /trace\n", ln.Addr())
	}

	fmt.Printf("patch server listening on %s (%d patches in catalogue)\n", srv.Addr(), len(all))
	fmt.Println("supported kernels: 3.14, 4.4 — Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\ndraining (in-flight sessions finish, no new connections)")
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Printf("drain incomplete after %v (%v); force-closing %d live connections\n",
			*drainFor, err, srv.Live())
	}
	srv.Close()

	fmt.Printf("served: %d kernel builds, %d artifacts cached, %d connections refused\n",
		srv.Builds(), srv.CachedArtifacts(), srv.Refused())
	if hooks != nil {
		_ = hooks.Metrics.Snapshot().RenderText(os.Stdout)
	}
	for _, st := range srv.Statuses() {
		fmt.Printf("  status: code=%d seq=%d at=%s\n", st.Code, st.Seq, st.At.Format("15:04:05"))
	}
	return nil
}
