// Command kshot-patchserver runs KShot's remote Patch Server: the
// trusted build machine that verifies target enclaves, rebuilds
// kernels with each target's exact configuration, and serves encrypted
// function-level binary patches for the full CVE benchmark catalogue.
//
// Usage:
//
//	kshot-patchserver [-addr 127.0.0.1:7714]
//
// Targets (kshotd, or programs built on the kshot package) connect,
// upload their OS information and enclave measurement, and fetch
// patches by CVE identifier.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"kshot/internal/cvebench"
	"kshot/internal/patchserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-patchserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kshot-patchserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7714", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The server's source view includes every benchmark subsystem, as
	// a distro vendor's tree would.
	all := cvebench.All()
	for _, e := range cvebench.FigureSix() {
		if e.FigureOnly {
			all = append(all, e)
		}
	}
	srv, err := patchserver.NewServer(*addr, cvebench.TreeProviderFor(all...))
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, e := range all {
		srv.RegisterPatch(e.SourcePatch())
	}

	fmt.Printf("patch server listening on %s (%d patches in catalogue)\n", srv.Addr(), len(all))
	fmt.Println("supported kernels: 3.14, 4.4 — Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
	for _, st := range srv.Statuses() {
		fmt.Printf("  status: code=%d seq=%d at=%s\n", st.Code, st.Seq, st.At.Format("15:04:05"))
	}
	return nil
}
