// Command kshotd is the target-machine side of KShot: it boots the
// simulated machine with a kernel vulnerable to the requested CVEs,
// provisions SMM and the SGX preparation enclave, connects to the
// remote patch server, and live-patches each CVE — printing the
// exploit result before and after, the per-stage timing, and the
// introspection status.
//
// Usage:
//
//	kshotd -server 127.0.0.1:7714 [-version 4.4] [-cves CVE-2014-0196,CVE-2016-5195] [-rollback]
//
// Run kshot-patchserver first (or pass -standalone to spin up an
// in-process server).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/introspect"
	"kshot/internal/obs"
	"kshot/internal/patchserver"
	"kshot/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kshotd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kshotd", flag.ContinueOnError)
	server := fs.String("server", "", "patch server address")
	version := fs.String("version", "4.4", "kernel version to boot (3.14 or 4.4)")
	cves := fs.String("cves", "CVE-2014-0196,CVE-2016-5195,CVE-2017-17806", "comma-separated CVEs to patch")
	rollback := fs.Bool("rollback", false, "roll each patch back after applying (demonstration)")
	standalone := fs.Bool("standalone", false, "start an in-process patch server")
	template := fs.Bool("template", false, "provision by COW-forking a booted template instead of a cold boot")
	obsAddr := fs.String("obs", "", "serve /metrics and /trace on this address while patching")
	introPeriod := fs.Duration("introspect", 0, "enable event-driven introspection, sweeping kernel text at this period (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var entries []*cvebench.Entry
	extra := map[string]string{}
	for _, id := range strings.Split(*cves, ",") {
		id = strings.TrimSpace(id)
		e, ok := cvebench.Get(id)
		if !ok {
			return fmt.Errorf("unknown CVE %q (see kshot-cvelist)", id)
		}
		entries = append(entries, e)
		extra[e.File] = e.Vuln
	}

	addr := *server
	var standaloneSrv *patchserver.Server
	if *standalone {
		srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
		if err != nil {
			return err
		}
		defer srv.Close()
		for _, e := range entries {
			srv.RegisterPatch(e.SourcePatch())
		}
		standaloneSrv = srv
		addr = srv.Addr()
		fmt.Printf("standalone patch server on %s\n", addr)
	}
	if addr == "" {
		return fmt.Errorf("no patch server: pass -server or -standalone")
	}

	var hooks *obs.Hooks
	if *obsAddr != "" {
		hooks = obs.NewHooks(0, nil)
		if standaloneSrv != nil {
			// Server-side cache/connection metrics land in the same
			// registry as the target's pipeline metrics.
			standaloneSrv.SetObserver(hooks)
		}
	}

	sysOpts := core.Options{
		Version:    *version,
		ExtraFiles: extra,
		ServerAddr: addr,
	}
	if *introPeriod > 0 {
		sysOpts.Introspection = &introspect.Config{SweepEvery: *introPeriod}
	}
	if *template {
		cache := core.NewTemplateCache()
		defer cache.Close()
		cache.SetObserver(hooks)
		sysOpts.TemplateCache = cache
	}
	fmt.Printf("booting target machine: kernel %s, %d vulnerable subsystems\n", *version, len(entries))
	sys, err := core.NewSystemCtx(context.Background(), sysOpts)
	if err != nil {
		return err
	}
	defer sys.Close()
	if *template {
		fmt.Println("forked from template; SMM locked, server attach on first patch")
	} else {
		fmt.Println("SMM locked, enclave attested, channel keys established")
	}

	if hooks != nil {
		sys.SetObserver(hooks)
		// Resident-frame split of the target's physical memory: under
		// -template the private gauge is the fork's marginal footprint.
		hooks.GaugeFunc(obs.GaugeMemSharedBytes, func() int64 {
			return int64(sys.Machine.Mem.ResidentStats().SharedBytes)
		})
		hooks.GaugeFunc(obs.GaugeMemPrivateBytes, func() int64 {
			return int64(sys.Machine.Mem.ResidentStats().PrivateBytes)
		})
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, hooks.Mux()) }()
		fmt.Printf("observability on http://%s (/metrics, /trace)\n", ln.Addr())
	}

	for _, e := range entries {
		fmt.Printf("\n=== %s (%s, type %s) ===\n", e.CVE, strings.Join(e.Functions, ", "), e.TypesString())
		res, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			return err
		}
		fmt.Printf("  exploit before patch: vulnerable=%v (%s)\n", res.Vulnerable, res.Detail)

		rep, err := sys.Apply(context.Background(), e.CVE)
		if err != nil {
			return fmt.Errorf("apply %s: %w", e.CVE, err)
		}
		st := rep.Stages
		fmt.Printf("  patched %dB payload: SGX prep %sus (fetch %sus, preprocess %sus, pass %sus)\n",
			st.PayloadBytes, report.Us(st.SGXTotal()), report.Us(st.Fetch), report.Us(st.Preprocess), report.Us(st.Pass))
		fmt.Printf("  OS paused %sus (switch %sus, keygen %sus, decrypt %sus, verify %sus, apply %sus)\n",
			report.Us(st.SMMTotal()), report.Us(st.Switch), report.Us(st.KeyGen),
			report.Us(st.Decrypt), report.Us(st.Verify), report.Us(st.Apply))

		res, err = e.Exploit(sys.Kernel, 0)
		if err != nil {
			return err
		}
		fmt.Printf("  exploit after patch:  vulnerable=%v (%s)\n", res.Vulnerable, res.Detail)

		tampered, err := sys.Protect()
		if err != nil {
			return err
		}
		fmt.Printf("  introspection: tampering=%v\n", tampered)

		if *rollback {
			if _, err := sys.Rollback(context.Background(), e.CVE); err != nil {
				return fmt.Errorf("rollback %s: %w", e.CVE, err)
			}
			res, err = e.Exploit(sys.Kernel, 0)
			if err != nil {
				return err
			}
			fmt.Printf("  rolled back: vulnerable=%v\n", res.Vulnerable)
		}
	}

	fmt.Printf("\napplied patches: %v\n", sys.Applied())
	fmt.Printf("total SMIs: %d, virtual time elapsed: %v\n", sys.SMM.Entries(), sys.Clock.Now())
	if det := sys.Introspection(); det != nil {
		st := det.Stats()
		fmt.Printf("introspection: %d sweeps, %d detections\n", st.Sweeps, st.Detections)
		for _, v := range det.Verdicts() {
			fmt.Printf("  verdict: %s %s\n", v.Kind, v.Detail)
		}
	}
	if hooks != nil {
		fmt.Println("\nobservability summary:")
		if err := hooks.Metrics.Snapshot().RenderText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
