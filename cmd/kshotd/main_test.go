package main

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to the
// baseline, failing with a stack dump — teardown of HTTP servers,
// background sweeps, and template booters is asynchronous.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 { // slack for runtime helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunLeavesNoGoroutines drives a full kshotd run with every
// server-shaped feature on — standalone patch server, -obs metrics
// HTTP server, -template cache booter, -introspect background sweep —
// and asserts nothing outlives run(): listeners, sweep loops, and the
// template's machine are all torn down on the defer path.
func TestRunLeavesNoGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full system")
	}
	before := runtime.NumGoroutine()
	err := run([]string{
		"-standalone",
		"-template",
		"-obs", "127.0.0.1:0",
		"-introspect", "1ms",
		"-cves", "CVE-2014-0196",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	waitGoroutines(t, before)
}

// TestRunObsServerOnly pins the -obs teardown on the non-template
// path, where the listener defer is the only thing stopping the
// metrics server.
func TestRunObsServerOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full system")
	}
	before := runtime.NumGoroutine()
	err := run([]string{
		"-standalone",
		"-obs", "127.0.0.1:0",
		"-cves", "CVE-2014-0196",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	waitGoroutines(t, before)
}
