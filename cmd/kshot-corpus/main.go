// Command kshot-corpus works with the seeded synthetic CVE corpus:
// generating cases, differentially verifying them against the live
// patch pipeline, and shrinking a sweep failure to its one-seed
// reproducer.
//
// Usage:
//
//	kshot-corpus generate [-seed N] [-count N] [-dump DIR]
//	kshot-corpus verify   [-seed N] [-count N] [-e2e N] [-workers N]
//	kshot-corpus shrink   -seed N [-e2e]
//
// generate prints the deterministic corpus manifest (same seed ⇒
// byte-identical output; pipe two runs through cmp to check) and, with
// -dump, writes each case's vulnerable/fixed sources to DIR.
//
// verify runs the differential sweep: every case is checked at the
// analysis level (patch build, classification, trampoline math), and
// the first -e2e cases are additionally driven through a live boot →
// exploit → apply → exploit → rollback → frame-diff cycle (-e2e -1
// for all of them).
//
// shrink regenerates ONE case from the seed a divergence report names
// and verifies just that case with full detail — the minimized,
// reproducible failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kshot/internal/corpusgen"
	"kshot/internal/evalharness"
	"kshot/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kshot-corpus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: kshot-corpus <generate|verify|shrink> [flags]")
	}
	switch args[0] {
	case "generate":
		return runGenerate(args[1:])
	case "verify":
		return runVerify(args[1:])
	case "shrink":
		return runShrink(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want generate, verify, or shrink)", args[0])
	}
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("kshot-corpus generate", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0xC0DE, "corpus master seed")
	count := fs.Int("count", 64, "number of cases")
	dump := fs.String("dump", "", "directory to write per-case .vuln.asm/.fixed.asm sources")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cases := corpusgen.Generate(corpusgen.Config{Seed: *seed, Count: *count})
	fmt.Print(corpusgen.Manifest(cases))
	if *dump == "" {
		return nil
	}
	if err := os.MkdirAll(*dump, 0o755); err != nil {
		return err
	}
	for _, c := range cases {
		base := filepath.Join(*dump, strings.TrimSuffix(filepath.Base(c.File), ".asm"))
		if err := os.WriteFile(base+".vuln.asm", []byte(c.Vuln), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(base+".fixed.asm", []byte(c.Fixed), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d case sources to %s\n", len(cases), *dump)
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("kshot-corpus verify", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0xC0DE, "corpus master seed")
	count := fs.Int("count", 256, "number of cases")
	e2e := fs.Int("e2e", -1, "cases to drive end-to-end through a live system (-1: all)")
	workers := fs.Int("workers", 8, "verification concurrency")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats := evalharness.RunCorpusSweep(evalharness.SweepOptions{
		Seed: *seed, Count: *count, E2ECount: *e2e, Workers: *workers,
	})
	if err := evalharness.CorpusTable(stats).Render(os.Stdout); err != nil {
		return err
	}
	if n := len(stats.Divergences); n > 0 {
		fmt.Printf("\n%d divergence(s):\n", n)
		for _, d := range stats.Divergences {
			fmt.Println(" ", d)
		}
		return fmt.Errorf("%d of %d cases diverged", n, stats.Cases)
	}
	return nil
}

func runShrink(args []string) error {
	fs := flag.NewFlagSet("kshot-corpus shrink", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "case seed from a divergence report (required)")
	e2e := fs.Bool("e2e", true, "include the live end-to-end stage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !seedFlagSet(fs) {
		return fmt.Errorf("shrink requires -seed (the value a divergence report names)")
	}
	c := corpusgen.GenCase(*seed)
	t := report.NewTable(fmt.Sprintf("Case %s (seed %#016x)", c.ID, c.Seed), "Field", "Value")
	t.AddRow("archetype", c.Archetype)
	t.AddRow("config", fmt.Sprintf("%s ftrace=%v inline=%v", c.Version, c.Ftrace, c.Inline))
	t.AddRow("expected types", c.Expect.TypesString())
	t.AddRow("expected funcs", strings.Join(c.Expect.FuncNames(), ", "))
	if len(c.Expect.NewGlobals) > 0 {
		t.AddRow("new globals", strings.Join(c.Expect.NewGlobals, ", "))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	res := evalharness.VerifyCase(c, *e2e)
	if len(res.Divergences) == 0 {
		fmt.Println("\ncase verifies cleanly — no divergence at this seed")
		return nil
	}
	fmt.Printf("\n%d divergence(s):\n", len(res.Divergences))
	for _, d := range res.Divergences {
		fmt.Printf("  stage %-16s %s\n", d.Stage, d.Detail)
	}
	fmt.Println("\nvulnerable source:")
	fmt.Println(c.Vuln)
	fmt.Println("fixed source:")
	fmt.Println(c.Fixed)
	return fmt.Errorf("case %s diverges", c.ID)
}

func seedFlagSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	return set
}
