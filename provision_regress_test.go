package kshot

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to the
// baseline (teardown is asynchronous), failing with a stack dump.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 { // slack for runtime helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNewCtxCancelMidProvision pins the SystemProvisioner
// ctx-threading fix: a cancelled provisioning context must surface
// ctx.Err() from NewCtx, must not leak a template build, and must not
// poison the template cache — the next provision with a live context
// retries the boot and succeeds, and later provisions hit the cache.
func TestNewCtxCancelMidProvision(t *testing.T) {
	e, ok := LookupCVE("CVE-2014-0196")
	if !ok {
		t.Fatal("missing CVE-2014-0196")
	}
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(e)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterPatch(e.SourcePatch())

	tc := NewTemplateCache()
	t.Cleanup(tc.Close)
	opts := []Option{
		WithVersion("4.4"),
		WithExtraFiles(map[string]string{e.File: e.Vuln}),
		WithServerAddr(srv.Addr()),
		WithTemplateCache(tc),
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys, err := NewCtx(ctx, opts...)
	if err == nil {
		sys.Close()
		t.Fatal("NewCtx succeeded with a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NewCtx error = %v, want ctx.Err()", err)
	}
	waitGoroutines(t, before)

	// The failed boot must not be cached: the retry pays a second
	// miss, not a poisoned hit.
	if st := tc.Stats(); st.Misses != 1 || st.Hits != 0 || st.Forks != 0 {
		t.Fatalf("cache stats after cancelled boot = %+v, want 1 miss and nothing cached", st)
	}
	sys, err = NewCtx(context.Background(), opts...)
	if err != nil {
		t.Fatalf("retry after cancelled boot: %v", err)
	}
	sys.Close()
	if st := tc.Stats(); st.Misses != 2 || st.Forks != 1 {
		t.Fatalf("cache stats after retry = %+v, want a second miss and one fork", st)
	}

	// With the template now cached, provisioning is hit + fork.
	sys, err = NewCtx(context.Background(), opts...)
	if err != nil {
		t.Fatalf("cached provision: %v", err)
	}
	sys.Close()
	if st := tc.Stats(); st.Hits != 1 || st.Forks != 2 {
		t.Fatalf("cache stats after cached provision = %+v, want one hit and two forks", st)
	}
}
