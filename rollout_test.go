package kshot

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"kshot/internal/timing"
)

// chaosFleet is the fleet shape of the seeded chaos rollout: 32
// targets across 4 failure domains, so ~3% chaos faults one target.
func chaosFleet() []RolloutTarget {
	out := make([]RolloutTarget, 32)
	for i := range out {
		out[i] = RolloutTarget{
			ID:     fmt.Sprintf("fleet-%02d", i),
			Domain: fmt.Sprintf("rack-%d", i%4),
		}
	}
	return out
}

// runChaosRollout runs one seeded rollout of two CVEs across the
// chaos fleet with ~3% of targets refusing every SMI delivery, and
// returns the final accounting plus the persisted state bytes.
func runChaosRollout(t *testing.T, seed int64) (*Rollout, *RolloutResult, error, []byte) {
	t.Helper()
	ids := []string{"CVE-2016-0728", "CVE-2014-0196"}
	entries := make([]*CVE, len(ids))
	files := make(map[string]string, len(ids))
	for i, id := range ids {
		e, ok := LookupCVE(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		entries[i] = e
		files[e.File] = e.Vuln
	}
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entries...)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}

	store := &RolloutMemStore{}
	roll, err := NewRollout(
		WithTargets(chaosFleet()),
		WithCVEs(ids...),
		WithProvisioner(SystemProvisioner(srv.Addr(), WithExtraFiles(files))),
		WithSeed(seed),
		WithFirstWaveFraction(0.125),
		WithStateStore(store),
		// Chaos: ~3% of the fleet refuses all SMI deliveries mid-patch.
		WithTargetFaults(FaultFraction(seed, 0.03, SMIFaults(64)...)),
		// Determinism mode: synchronous single-worker fetches and a
		// virtual wall clock, so fault schedules and timing replay.
		WithTargetSyncFetch(),
		WithTargetFetchWorkers(1),
		WithWallClock(timing.NewFakeWall()),
		// The faulted wave must roll back without stopping the rollout:
		// this test is about completion, not the failure budget.
		WithHaltThreshold(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := roll.Run(context.Background())
	return roll, res, runErr, store.Bytes()
}

// TestRolloutChaosDeterministic is the fleet chaos acceptance run:
// with a seeded ~3% of targets refusing their SMIs mid-rollout, the
// rollout completes with exactly the faulted waves rolled back, every
// unaffected target patched, and a byte-identical persisted state on
// replaying the same seed.
func TestRolloutChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fleet rollout skipped in -short mode")
	}
	const seed = 3

	// The chaos schedule is a pure function of (seed, target ID):
	// recompute it to know which targets must fault.
	schedule := FaultFraction(seed, 0.03, SMIFaults(64)...)
	faulted := map[string]bool{}
	for _, tg := range chaosFleet() {
		if schedule(tg) != nil {
			faulted[tg.ID] = true
		}
	}
	if len(faulted) == 0 {
		t.Fatalf("seed %d faults no targets; pick a seed that exercises chaos", seed)
	}

	roll, res, runErr, stateBytes := runChaosRollout(t, seed)

	// Which waves carry a faulted target? Those — and only those —
	// must have rolled back.
	badWave := map[int]bool{}
	for _, w := range roll.Plan() {
		for _, id := range w.Targets {
			if faulted[id] {
				badWave[w.Index] = true
			}
		}
	}
	if badWave[0] {
		t.Fatalf("seed %d faults the canary; pick a seed whose faulted targets land in later waves", seed)
	}

	if !errors.Is(runErr, ErrWaveRolledBack) {
		t.Fatalf("Run err = %v, want ErrWaveRolledBack", runErr)
	}
	if errors.Is(runErr, ErrRolloutHalted) || res.Halted {
		t.Fatalf("rollout halted (err %v); want completion with rolled-back waves", runErr)
	}
	for _, wr := range res.Waves {
		if wr.RolledBack != badWave[wr.Index] {
			t.Errorf("wave %d rolledBack=%v, want %v (members %v, unhealthy %v)",
				wr.Index, wr.RolledBack, badWave[wr.Index], wr.Targets, wr.Unhealthy)
		}
	}

	// Per-target: members of faulted waves rolled back; every target
	// in an unaffected wave is patched.
	for _, ts := range res.Targets {
		if badWave[ts.Wave] {
			if ts.Status != RolloutRolledBack && ts.Status != RolloutFailed {
				t.Errorf("%s (faulted wave %d) status %v", ts.ID, ts.Wave, ts.Status)
			}
		} else if ts.Status != RolloutPatched {
			t.Errorf("%s (healthy wave %d) status %v, want patched", ts.ID, ts.Wave, ts.Status)
		}
		if faulted[ts.ID] && ts.Status == RolloutPatched {
			t.Errorf("faulted target %s ended patched", ts.ID)
		}
	}
	if res.Patched == 0 || res.Patched+res.Failed+res.RolledBack != 32 {
		t.Errorf("accounting patched=%d failed=%d rolledBack=%d of 32",
			res.Patched, res.Failed, res.RolledBack)
	}
	if len(stateBytes) == 0 {
		t.Fatal("no rollout state persisted")
	}

	// Replay: same seed, fresh fleet and server — the persisted state
	// must be byte-identical.
	_, res2, _, stateBytes2 := runChaosRollout(t, seed)
	if !bytes.Equal(stateBytes, stateBytes2) {
		t.Fatalf("replay persisted different state bytes (%d vs %d)",
			len(stateBytes), len(stateBytes2))
	}
	if res2.Patched != res.Patched || res2.RolledBack != res.RolledBack {
		t.Fatalf("replay accounting differs: %+v vs %+v", res2, res)
	}
}

// TestRolloutResumeAcrossCoordinators runs a real-system rollout,
// "crashes" the coordinator at a wave boundary, and hands the
// persisted state to a fresh coordinator: completed targets must not
// be re-patched, and the fleet must finish fully patched.
func TestRolloutResumeAcrossCoordinators(t *testing.T) {
	if testing.Short() {
		t.Skip("resume fleet rollout skipped in -short mode")
	}
	entry, ok := LookupCVE("CVE-2016-0728")
	if !ok {
		t.Fatal("missing CVE-2016-0728")
	}
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	fleet := chaosFleet()[:12]
	files := map[string]string{entry.File: entry.Vuln}
	path := t.TempDir() + "/rollout.state"

	build := func(progress func(WaveResult)) *Rollout {
		opts := []RolloutOption{
			WithTargets(fleet),
			WithCVEs(entry.CVE),
			WithProvisioner(SystemProvisioner(srv.Addr(), WithExtraFiles(files))),
			WithSeed(11),
			WithFirstWaveFraction(0.25),
			WithStateStore(NewRolloutFileStore(path)),
		}
		if progress != nil {
			opts = append(opts, WithProgress(progress))
		}
		roll, err := NewRollout(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return roll
	}

	ctx, cancel := context.WithCancel(context.Background())
	r1 := build(func(wr WaveResult) {
		if wr.Index == 1 {
			cancel() // coordinator dies after wave 1 commits
		}
	})
	if _, err := r1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("first coordinator err = %v, want context.Canceled", err)
	}
	st, err := NewRolloutFileStore(path).Load()
	if err != nil || st == nil {
		t.Fatalf("no persisted state after crash: %v", err)
	}
	already := map[string]bool{}
	for _, ts := range st.Targets {
		if ts.Status == RolloutPatched {
			already[ts.ID] = true
		}
	}
	if len(already) == 0 {
		t.Fatal("first coordinator patched nothing before the crash")
	}

	r2 := build(nil)
	var resumedSkips int
	res, err := func() (*RolloutResult, error) {
		// Count resume skips through the wave results.
		res, err := r2.Run(context.Background())
		for _, wr := range res.Waves {
			resumedSkips += wr.Resumed
		}
		return res, err
	}()
	if err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	if res.Patched != len(fleet) {
		t.Fatalf("resumed rollout patched %d/%d", res.Patched, len(fleet))
	}
	if resumedSkips != 0 {
		// NextWave advanced past completed waves entirely; members of
		// those waves are not revisited, so no per-member skips.
		t.Logf("resume skipped %d members in-wave", resumedSkips)
	}
}
